//! End-to-end tests of the `xp` binary: subcommand listing, JSONL
//! emission, the headline engine guarantee — byte-identical cell
//! records for `--threads 1` vs `--threads 4` with the same seed —
//! and the observability surface (`--trace`, metrics records,
//! `profile-diff`).

use nonsearch_engine::{parse_json, validate_chrome_trace, validate_jsonl, CELL_TYPE, RUN_TYPE};
use std::path::PathBuf;
use std::process::{Command, Output};

fn xp(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xp"))
        .args(args)
        .output()
        .expect("xp binary runs")
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("xp_cli_{}_{tag}", std::process::id()))
}

/// The deterministic part of a run file: every `"type":"cell"` line, in
/// order. The `"type":"run"` footer carries wall time and thread count
/// and is legitimately volatile.
fn cell_lines(text: &str) -> Vec<&str> {
    text.lines()
        .filter(|l| {
            parse_json(l)
                .expect("every emitted line parses")
                .get("type")
                .and_then(|t| t.as_str())
                .map(|t| t == CELL_TYPE)
                .unwrap_or(false)
        })
        .collect()
}

#[test]
fn list_enumerates_the_registered_experiments() {
    let out = xp(&["list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for name in [
        "theorem1-weak",
        "theorem1-strong",
        "lemma1-bound",
        "lemma2-equiv",
        "lemma3-event",
        "ablation",
    ] {
        assert!(stdout.contains(name), "xp list misses {name}:\n{stdout}");
    }
}

#[test]
fn unknown_subcommand_and_bad_flags_fail_cleanly() {
    let out = xp(&["no-such-experiment"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("theorem1-weak"), "should list experiments");

    let out = xp(&["theorem1-weak", "--threads", "abc"]);
    assert_eq!(out.status.code(), Some(2));

    let out = xp(&["theorem1-weak", "--wat"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn jsonl_cell_records_are_byte_identical_across_thread_counts() {
    let single = temp_path("t1.jsonl");
    let quad = temp_path("t4.jsonl");
    let common = [
        "theorem1-weak",
        "--quick",
        "--trials",
        "4",
        "--sizes",
        "128,256",
        "--seed",
        "7",
        "--out",
    ];

    let mut args: Vec<&str> = common.to_vec();
    let single_str = single.to_str().unwrap();
    args.push(single_str);
    args.extend(["--threads", "1"]);
    let out = xp(&args);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let mut args: Vec<&str> = common.to_vec();
    let quad_str = quad.to_str().unwrap();
    args.push(quad_str);
    args.extend(["--threads", "4"]);
    let out = xp(&args);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let a = std::fs::read_to_string(&single).unwrap();
    let b = std::fs::read_to_string(&quad).unwrap();

    // Both record streams validate.
    let va = validate_jsonl(&a).unwrap();
    let vb = validate_jsonl(&b).unwrap();
    assert!(va.cells > 0 && va.runs == 1, "{va:?}");
    assert_eq!(va, vb);

    // The deterministic cell lines are byte-identical.
    assert_eq!(cell_lines(&a), cell_lines(&b));

    // Only the volatile run footer differs — and it records the thread
    // count that actually ran.
    let footer = |text: &str| {
        text.lines()
            .find(|l| {
                parse_json(l)
                    .unwrap()
                    .get("type")
                    .and_then(|t| t.as_str())
                    .map(|t| t == RUN_TYPE)
                    .unwrap_or(false)
            })
            .map(|l| parse_json(l).unwrap())
            .expect("run footer present")
    };
    assert_eq!(
        footer(&a).get("threads").and_then(|v| v.as_f64()),
        Some(1.0)
    );
    assert_eq!(
        footer(&b).get("threads").and_then(|v| v.as_f64()),
        Some(4.0)
    );
    assert_eq!(footer(&a).get("seed").and_then(|v| v.as_f64()), Some(7.0));

    // `xp validate` agrees from the command line.
    let out = xp(&["validate", single_str, quad_str]);
    assert!(out.status.success());

    std::fs::remove_file(&single).ok();
    std::fs::remove_file(&quad).ok();
}

#[test]
fn csv_format_writes_aligned_rows() {
    let path = temp_path("run.csv");
    let path_str = path.to_str().unwrap();
    let out = xp(&[
        "lemma3-event",
        "--quick",
        "--trials",
        "8",
        "--format",
        "csv",
        "--out",
        path_str,
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let csv = std::fs::read_to_string(&path).unwrap();
    let mut lines = csv.lines();
    let header = lines.next().unwrap();
    assert!(header.starts_with("type,experiment,"));
    let columns = header.split(',').count();
    let mut rows = 0;
    for line in lines {
        assert_eq!(line.split(',').count(), columns, "ragged row: {line}");
        rows += 1;
    }
    assert!(rows > 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn validate_flags_corrupt_files() {
    let path = temp_path("bad.jsonl");
    std::fs::write(&path, "{\"type\":\"cell\"}\nnot json at all\n").unwrap();
    let out = xp(&["validate", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    std::fs::remove_file(&path).ok();
}

/// The `"quick"` field of the run footer emitted by one tiny run.
fn footer_quick(args: &[&str], env: Option<(&str, &str)>, tag: &str) -> bool {
    let path = temp_path(tag);
    let mut full: Vec<&str> = vec!["theorem1-weak", "--sizes", "32", "--trials", "2", "--out"];
    let path_str = path.to_str().unwrap().to_string();
    full.push(&path_str);
    full.extend_from_slice(args);
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_xp"));
    // Start from a known state: the ambient harness environment must
    // not leak into the regression assertions below.
    cmd.args(&full).env_remove("NONSEARCH_QUICK");
    if let Some((key, value)) = env {
        cmd.env(key, value);
    }
    let out = cmd.output().expect("xp binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).unwrap();
    let quick = text
        .lines()
        .filter_map(|l| parse_json(l).ok())
        .find(|v| v.get("type").and_then(|t| t.as_str()) == Some(RUN_TYPE))
        .and_then(|v| v.get("quick").and_then(|q| q.as_bool()))
        .expect("run footer carries a quick field");
    std::fs::remove_file(&path).ok();
    quick
}

#[test]
fn quick_env_zero_and_empty_do_not_enable_quick_mode() {
    // The regression pair: `NONSEARCH_QUICK=0` (and the empty string)
    // used to *enable* quick mode because only presence was checked.
    assert!(!footer_quick(
        &[],
        Some(("NONSEARCH_QUICK", "0")),
        "env0.jsonl"
    ));
    assert!(!footer_quick(
        &[],
        Some(("NONSEARCH_QUICK", "")),
        "envempty.jsonl"
    ));
    assert!(footer_quick(
        &[],
        Some(("NONSEARCH_QUICK", "1")),
        "env1.jsonl"
    ));
    assert!(footer_quick(&["--quick"], None, "flag.jsonl"));
    assert!(!footer_quick(&[], None, "plain.jsonl"));
}

#[test]
fn trace_and_metrics_flow_through_a_profiled_run() {
    let run = temp_path("obs.jsonl");
    let trace = temp_path("obs.trace.json");
    let run_str = run.to_str().unwrap();
    let trace_str = trace.to_str().unwrap();
    let out = xp(&[
        "theorem1-weak",
        "--quick",
        "--trials",
        "3",
        "--sizes",
        "64,128",
        "--profile",
        "--trace",
        trace_str,
        "--out",
        run_str,
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The JSONL stream now carries metrics records next to the profile
    // records, and the library validator counts both.
    let text = std::fs::read_to_string(&run).unwrap();
    let summary = validate_jsonl(&text).unwrap();
    assert!(summary.cells > 0, "{summary:?}");
    assert!(summary.profiles > 0, "{summary:?}");
    assert!(summary.metrics > 0, "{summary:?}");
    assert_eq!(summary.metrics, summary.profiles, "{summary:?}");

    // The trace is a structurally valid Chrome Trace Event document
    // covering the whole span hierarchy.
    let trace_text = std::fs::read_to_string(&trace).unwrap();
    let events = validate_chrome_trace(&trace_text).unwrap();
    assert!(events > 0);
    for name in ["\"run\"", "\"size-cell\"", "\"trial-batch\"", "\"trial\""] {
        assert!(trace_text.contains(name), "trace misses {name}");
    }

    // `xp validate` accepts both files from the command line.
    let out = xp(&["validate", run_str, trace_str]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("metrics"), "{stdout}");

    std::fs::remove_file(&run).ok();
    std::fs::remove_file(&trace).ok();
}

#[test]
fn profile_diff_gates_on_a_doubled_baseline() {
    let run = temp_path("pd.jsonl");
    let run_str = run.to_str().unwrap();
    let out = xp(&[
        "theorem1-weak",
        "--trials",
        "3",
        "--sizes",
        "64",
        "--profile",
        "--out",
        run_str,
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Self-baseline: ratio 1.0 everywhere, exit 0.
    let base = temp_path("pd_base.json");
    let base_str = base.to_str().unwrap();
    let out = xp(&["profile-diff", run_str, "--write-baseline", base_str]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = xp(&["profile-diff", run_str, "--baseline", base_str]);
    assert_eq!(out.status.code(), Some(0));

    // A baseline claiming 2× the measured throughput regresses at the
    // default 0.7 threshold (ratio 0.5) — and exits nonzero.
    let doubled = temp_path("pd_base2.json");
    let doubled_str = doubled.to_str().unwrap();
    let out = xp(&[
        "profile-diff",
        run_str,
        "--write-baseline",
        doubled_str,
        "--scale",
        "2.0",
    ]);
    assert!(out.status.success());
    let out = xp(&["profile-diff", run_str, "--baseline", doubled_str]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("regression"), "{stderr}");

    // A run without profile records cannot be gated — usage error.
    let bare = temp_path("pd_bare.jsonl");
    let bare_str = bare.to_str().unwrap();
    let out = xp(&[
        "theorem1-weak",
        "--trials",
        "2",
        "--sizes",
        "32",
        "--out",
        bare_str,
    ]);
    assert!(out.status.success());
    let out = xp(&["profile-diff", bare_str, "--baseline", base_str]);
    assert_eq!(out.status.code(), Some(2));

    std::fs::remove_file(&run).ok();
    std::fs::remove_file(&base).ok();
    std::fs::remove_file(&doubled).ok();
    std::fs::remove_file(&bare).ok();
}

#[test]
fn quick_with_inline_value_is_rejected_not_misread() {
    // The regression: `--quick=false` used to silently enable quick
    // mode. The strict xp parser now rejects any inline value.
    for arg in ["--quick=false", "--quick=true", "--mmap=1"] {
        let out = xp(&["theorem1-weak", arg]);
        assert_eq!(out.status.code(), Some(2), "{arg} must be rejected");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains("boolean"), "{arg}: {stderr}");
    }
}
