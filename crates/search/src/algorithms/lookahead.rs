//! Look-ahead and restarting walks.

use crate::frontier::FrontierCursors;
use crate::{DiscoveredView, SearchTask, WeakSearcher};
use nonsearch_graph::{EdgeId, NodeId};
use rand::{Rng, RngCore};

/// A greedy look-ahead walk: fully expand the current vertex, then move
/// to the revealed neighbor whose label is closest to the target's.
///
/// This is the weak-model analogue of Kleinberg's greedy routing with
/// the label metric standing in for lattice distance — the natural
/// algorithm to try once one knows identities are ages. Theorem 1 says
/// it, too, is stuck at `Ω(√n)`.
#[derive(Debug, Clone, Default)]
pub struct LookaheadWalk {
    current: Option<NodeId>,
    edges: FrontierCursors,
    /// Neighbors revealed while expanding the current vertex.
    basket: Vec<NodeId>,
}

impl LookaheadWalk {
    /// Creates the walker (positioned at the task start on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

impl WeakSearcher for LookaheadWalk {
    fn name(&self) -> &'static str {
        "lookahead-walk"
    }

    fn next_request(
        &mut self,
        task: &SearchTask,
        view: &DiscoveredView,
        _rng: &mut dyn RngCore,
    ) -> Option<(NodeId, EdgeId)> {
        let current = *self.current.get_or_insert(task.start);
        if let Some(e) = self.edges.next_unexplored(view, current) {
            return Some((current, e));
        }
        // Current vertex fully expanded: hop to the basket's best
        // neighbor (closest label to the target), then continue there.
        let gap = |v: NodeId| v.label().abs_diff(task.target.label());
        let next = self
            .basket
            .drain(..)
            .filter(|v| view.has_unexplored(*v))
            .min_by_key(|&v| (gap(v), v));
        match next {
            Some(v) => {
                self.current = Some(v);
                self.edges.next_unexplored(view, v).map(|e| (v, e))
            }
            None => {
                // Dead end: fall back to the globally best discovered
                // vertex with work left (keeps the walk from giving up
                // while the component still has unexplored edges).
                let fallback = view
                    .discovered()
                    .iter()
                    .copied()
                    .filter(|v| view.has_unexplored(*v))
                    .min_by_key(|&v| (gap(v), v))?;
                self.current = Some(fallback);
                self.edges
                    .next_unexplored(view, fallback)
                    .map(|e| (fallback, e))
            }
        }
    }

    fn observe(&mut self, _request: (NodeId, EdgeId), revealed: NodeId) {
        self.basket.push(revealed);
    }

    fn reset(&mut self) {
        self.current = None;
        self.edges.reset();
        self.basket.clear();
    }

    fn reserve(&mut self, nodes: usize, edges: usize) {
        self.edges.reserve(nodes);
        // The basket holds one entry per request since the last hop,
        // which the expanding vertex's degree bounds.
        self.basket.reserve(2 * edges);
    }

    fn frontier_rescans(&self) -> u64 {
        self.edges.rescans()
    }
}

/// A random walk that teleports back to the start every `restart_every`
/// steps — the classic mixing trick for walks trapped in dense cores.
#[derive(Debug, Clone)]
pub struct RestartingWalk {
    restart_every: usize,
    current: Option<NodeId>,
    since_restart: usize,
}

impl RestartingWalk {
    /// Creates a walk restarting every `restart_every` steps.
    ///
    /// # Panics
    ///
    /// Panics if `restart_every == 0`.
    pub fn new(restart_every: usize) -> Self {
        assert!(restart_every > 0, "restart period must be positive");
        RestartingWalk {
            restart_every,
            current: None,
            since_restart: 0,
        }
    }
}

impl WeakSearcher for RestartingWalk {
    fn name(&self) -> &'static str {
        "restarting-walk"
    }

    fn next_request(
        &mut self,
        task: &SearchTask,
        view: &DiscoveredView,
        rng: &mut dyn RngCore,
    ) -> Option<(NodeId, EdgeId)> {
        if self.since_restart >= self.restart_every {
            self.current = Some(task.start);
            self.since_restart = 0;
        }
        let current = *self.current.get_or_insert(task.start);
        let info = view.vertex(current)?;
        if info.degree() == 0 {
            return None;
        }
        let slot = rng.gen_range(0..info.degree());
        Some((current, info.incident()[slot]))
    }

    fn observe(&mut self, _request: (NodeId, EdgeId), revealed: NodeId) {
        self.current = Some(revealed);
        self.since_restart += 1;
    }

    fn reset(&mut self) {
        self.current = None;
        self.since_restart = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_weak, SearchTask};
    use nonsearch_graph::UndirectedCsr;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0)
    }

    fn path(n: usize) -> UndirectedCsr {
        UndirectedCsr::from_edges(n, (1..n).map(|i| (i - 1, i))).unwrap()
    }

    #[test]
    fn lookahead_walks_a_labelled_path_optimally() {
        let g = path(16);
        let task = SearchTask::new(NodeId::new(0), NodeId::new(15));
        let o = run_weak(&g, &task, &mut LookaheadWalk::new(), &mut rng()).unwrap();
        assert!(o.found);
        assert_eq!(o.requests, 15);
    }

    #[test]
    fn lookahead_explores_whole_component_if_needed() {
        // Binary tree with the target in a corner: look-ahead must not
        // give up before the component is exhausted.
        let g =
            UndirectedCsr::from_edges(7, [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)]).unwrap();
        for target in 1..7 {
            let task = SearchTask::new(NodeId::new(0), NodeId::new(target));
            let o = run_weak(&g, &task, &mut LookaheadWalk::new(), &mut rng()).unwrap();
            assert!(o.found, "target {target}");
        }
    }

    #[test]
    fn lookahead_gives_up_outside_component() {
        let g = UndirectedCsr::from_edges(4, [(0, 1)]).unwrap();
        let task = SearchTask::new(NodeId::new(0), NodeId::new(3));
        let o = run_weak(&g, &task, &mut LookaheadWalk::new(), &mut rng()).unwrap();
        assert!(o.gave_up);
    }

    #[test]
    fn restarting_walk_still_reaches_targets() {
        let g = path(8);
        let task = SearchTask::new(NodeId::new(0), NodeId::new(7)).with_budget(100_000);
        let o = run_weak(&g, &task, &mut RestartingWalk::new(50), &mut rng()).unwrap();
        assert!(o.found);
    }

    #[test]
    fn frequent_restarts_hurt_on_a_path() {
        // With restarts shorter than the distance, the walk can only
        // reach the target in the rare bursts that go straight out. A
        // single run is noisy, so compare totals over several seeds.
        let g = path(10);
        let task = SearchTask::new(NodeId::new(0), NodeId::new(9)).with_budget(200_000);
        let mut short_total = 0usize;
        let mut long_total = 0usize;
        for seed in 0..6u64 {
            let mut r = ChaCha8Rng::seed_from_u64(seed);
            let short = run_weak(&g, &task, &mut RestartingWalk::new(12), &mut r).unwrap();
            let long = run_weak(&g, &task, &mut RestartingWalk::new(10_000), &mut r).unwrap();
            assert!(short.found && long.found, "seed {seed}");
            short_total += short.requests;
            long_total += long.requests;
        }
        assert!(
            short_total > long_total,
            "restarts should hurt: {short_total} vs {long_total}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_restart_period_panics() {
        let _ = RestartingWalk::new(0);
    }

    #[test]
    fn reset_reuses_cleanly() {
        let g = path(6);
        let mut w = LookaheadWalk::new();
        let task = SearchTask::new(NodeId::new(0), NodeId::new(5));
        let a = run_weak(&g, &task, &mut w, &mut rng()).unwrap();
        let b = run_weak(&g, &task, &mut w, &mut rng()).unwrap();
        assert_eq!(a, b);
    }
}
