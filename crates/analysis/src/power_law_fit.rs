//! Discrete power-law exponent estimation.
//!
//! Implements the exact discrete maximum-likelihood estimator of
//! Clauset–Shalizi–Newman: for observations `x ≥ x_min` under
//! `P(d) = d^{−k} / ζ(k, x_min)`, the MLE `k̂` solves
//! `E_k[ln X] = (1/n) Σ ln x_i`, which we find by bisection using
//! Euler–Maclaurin-corrected Hurwitz-zeta sums. A Kolmogorov–Smirnov
//! distance between the empirical and fitted tail serves as goodness
//! indicator. The paper's models should produce `k > 1` (and real
//! networks `k ∈ [2, 3]`).

use std::fmt;

/// Result of a discrete power-law fit to a degree sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// Estimated exponent `k̂` in `P(d) ∝ d^{−k̂}`.
    pub exponent: f64,
    /// The cutoff actually used.
    pub x_min: usize,
    /// Number of observations at or above `x_min`.
    pub tail_size: usize,
    /// Kolmogorov–Smirnov distance between empirical and fitted CCDF on
    /// the tail (smaller is better).
    pub ks_distance: f64,
}

impl fmt::Display for PowerLawFit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "k={:.3} (x_min={}, tail n={}, KS={:.4})",
            self.exponent, self.x_min, self.tail_size, self.ks_distance
        )
    }
}

/// Truncation point beyond which zeta sums switch to the analytic tail.
const ZETA_DIRECT_TERMS: usize = 20_000;
/// Bisection bracket for the exponent.
const K_LO: f64 = 1.0001;
const K_HI: f64 = 25.0;

/// `Σ_{d=a}^∞ d^{−k}` (generalized/Hurwitz zeta) with Euler–Maclaurin
/// tail correction.
fn zeta(k: f64, a: usize) -> f64 {
    let n = a + ZETA_DIRECT_TERMS;
    let direct: f64 = (a..n).map(|d| (d as f64).powf(-k)).sum();
    let nf = n as f64;
    direct + nf.powf(1.0 - k) / (k - 1.0) + 0.5 * nf.powf(-k)
}

/// `Σ_{d=a}^∞ ln(d)·d^{−k}` with matching tail correction.
fn zeta_log(k: f64, a: usize) -> f64 {
    let n = a + ZETA_DIRECT_TERMS;
    let direct: f64 = (a..n).map(|d| (d as f64).ln() * (d as f64).powf(-k)).sum();
    let nf = n as f64;
    let tail_integral = nf.powf(1.0 - k) * (nf.ln() / (k - 1.0) + 1.0 / ((k - 1.0) * (k - 1.0)));
    direct + tail_integral + 0.5 * nf.ln() * nf.powf(-k)
}

/// `E_k[ln X]` for the discrete power law on `x ≥ a`.
fn expected_log(k: f64, a: usize) -> f64 {
    zeta_log(k, a) / zeta(k, a)
}

/// Fits a discrete power law to `degrees` using observations `≥ x_min`.
///
/// Returns `None` if `x_min == 0`, fewer than 10 observations reach the
/// cutoff, or the sample mean of `ln x` does not exceed `ln x_min` by a
/// numerically meaningful margin (all mass at the cutoff — the MLE has no
/// finite solution). The estimate is clamped to `k ≤ 25`.
///
/// # Example
///
/// ```
/// use nonsearch_analysis::fit_power_law_mle;
///
/// // A synthetic Zipf-ish sample: counts ∝ d^{-2} for d = 1..=100.
/// let mut sample = Vec::new();
/// for d in 1usize..=100 {
///     let copies = (1e6 / (d as f64).powi(2)).round() as usize;
///     sample.extend(std::iter::repeat(d).take(copies));
/// }
/// let fit = fit_power_law_mle(&sample, 1).unwrap();
/// assert!((fit.exponent - 2.0).abs() < 0.1, "k = {}", fit.exponent);
/// ```
pub fn fit_power_law_mle(degrees: &[usize], x_min: usize) -> Option<PowerLawFit> {
    if x_min == 0 {
        return None;
    }
    let tail: Vec<usize> = degrees.iter().copied().filter(|&d| d >= x_min).collect();
    if tail.len() < 10 {
        return None;
    }
    let n = tail.len() as f64;
    let mean_log: f64 = tail.iter().map(|&d| (d as f64).ln()).sum::<f64>() / n;
    if mean_log <= (x_min as f64).ln() + 1e-9 {
        return None; // every observation at the cutoff
    }

    // E_k[ln X] is continuous and strictly decreasing in k; bisect.
    let mut lo = K_LO;
    let mut hi = K_HI;
    if expected_log(hi, x_min) > mean_log {
        // Even the steepest allowed law has a heavier log-mean: clamp.
        let exponent = K_HI;
        let ks = ks_distance(&tail, x_min, exponent);
        return Some(PowerLawFit {
            exponent,
            x_min,
            tail_size: tail.len(),
            ks_distance: ks,
        });
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if expected_log(mid, x_min) > mean_log {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let exponent = 0.5 * (lo + hi);
    let ks = ks_distance(&tail, x_min, exponent);
    Some(PowerLawFit {
        exponent,
        x_min,
        tail_size: tail.len(),
        ks_distance: ks,
    })
}

/// KS distance between the empirical tail CDF and the fitted discrete
/// power law with exponent `k` (zeta-normalized, evaluated on the
/// observed support).
fn ks_distance(tail: &[usize], x_min: usize, k: f64) -> f64 {
    let max = *tail.iter().max().expect("tail is non-empty");
    let norm = zeta(k, x_min);
    let n = tail.len() as f64;
    let mut counts = vec![0usize; max - x_min + 1];
    for &d in tail {
        counts[d - x_min] += 1;
    }
    let mut model_cdf = 0.0;
    let mut empirical_cdf = 0.0;
    let mut worst: f64 = 0.0;
    for (i, &c) in counts.iter().enumerate() {
        let d = (x_min + i) as f64;
        model_cdf += d.powf(-k) / norm;
        empirical_cdf += c as f64 / n;
        worst = worst.max((model_cdf - empirical_cdf).abs());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zipf_sample(k: f64, d_max: usize, scale: f64) -> Vec<usize> {
        let mut sample = Vec::new();
        for d in 1..=d_max {
            let copies = (scale / (d as f64).powf(k)).round() as usize;
            sample.extend(std::iter::repeat_n(d, copies));
        }
        sample
    }

    #[test]
    fn zeta_matches_known_values() {
        // ζ(2) = π²/6, ζ(3) ≈ 1.2020569.
        assert!((zeta(2.0, 1) - std::f64::consts::PI.powi(2) / 6.0).abs() < 1e-6);
        assert!((zeta(3.0, 1) - 1.202_056_9).abs() < 1e-6);
        // Hurwitz shift: ζ(2, 2) = ζ(2) − 1.
        assert!((zeta(2.0, 2) - (zeta(2.0, 1) - 1.0)).abs() < 1e-9);
    }

    #[test]
    fn expected_log_decreases_in_k() {
        assert!(expected_log(1.5, 1) > expected_log(2.5, 1));
        assert!(expected_log(2.5, 1) > expected_log(5.0, 1));
    }

    #[test]
    fn recovers_known_exponents() {
        for k in [1.8, 2.2, 2.8] {
            let sample = zipf_sample(k, 500, 2e6);
            let fit = fit_power_law_mle(&sample, 1).unwrap();
            assert!(
                (fit.exponent - k).abs() < 0.08,
                "k = {k}, fitted = {}",
                fit.exponent
            );
        }
    }

    #[test]
    fn recovers_exponent_with_larger_xmin() {
        let sample = zipf_sample(2.4, 500, 5e6);
        let fit = fit_power_law_mle(&sample, 3).unwrap();
        assert!(
            (fit.exponent - 2.4).abs() < 0.1,
            "fitted = {}",
            fit.exponent
        );
        assert_eq!(fit.x_min, 3);
    }

    #[test]
    fn good_fit_has_small_ks() {
        let sample = zipf_sample(2.5, 300, 5e6);
        let fit = fit_power_law_mle(&sample, 1).unwrap();
        assert!(fit.ks_distance < 0.02, "KS = {}", fit.ks_distance);
    }

    #[test]
    fn non_power_law_has_large_ks() {
        // A uniform degree sample is very far from any power law.
        let sample: Vec<usize> = (0..5000).map(|i| 1 + (i % 50)).collect();
        let fit = fit_power_law_mle(&sample, 1).unwrap();
        assert!(fit.ks_distance > 0.1, "KS = {}", fit.ks_distance);
    }

    #[test]
    fn xmin_filters_the_head() {
        let mut sample = zipf_sample(2.0, 100, 1e6);
        // Contaminate the head with a spike at degree 1.
        sample.extend(std::iter::repeat_n(1, 3_000_000));
        let fit_all = fit_power_law_mle(&sample, 1).unwrap();
        let fit_tail = fit_power_law_mle(&sample, 5).unwrap();
        // Cutting the contaminated head should move the estimate toward 2.
        assert!((fit_tail.exponent - 2.0).abs() < (fit_all.exponent - 2.0).abs());
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(fit_power_law_mle(&[], 1).is_none());
        assert!(fit_power_law_mle(&[5; 100], 5).is_none()); // all at x_min
        assert!(fit_power_law_mle(&[1, 2, 3], 1).is_none()); // tiny tail
        assert!(fit_power_law_mle(&[1; 100], 0).is_none()); // bad x_min
    }

    #[test]
    fn near_constant_sample_clamps_to_k_max() {
        // 99% at x_min, 1% slightly above: extremely steep but fittable.
        let mut sample = vec![1usize; 9900];
        sample.extend(std::iter::repeat_n(2, 10));
        let fit = fit_power_law_mle(&sample, 1).unwrap();
        assert!(fit.exponent > 5.0);
    }

    #[test]
    fn display_mentions_exponent() {
        let sample = zipf_sample(2.0, 50, 1e5);
        let fit = fit_power_law_mle(&sample, 1).unwrap();
        assert!(fit.to_string().contains("k="));
    }
}
