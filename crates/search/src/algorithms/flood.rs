//! Exhaustive frontier expansions: BFS flooding and DFS.

use crate::frontier::FrontierCursors;
use crate::{DiscoveredView, SearchTask, WeakSearcher};
use nonsearch_graph::{EdgeId, NodeId};
use rand::RngCore;

/// Breadth-first flooding: explore every edge of the earliest-discovered
/// vertex that still has unexplored edges.
///
/// Guaranteed to find any target in a connected graph with at most one
/// request per edge slot; the exhaustive baseline every smarter strategy
/// is compared against. Amortized O(1) per request.
#[derive(Debug, Clone, Default)]
pub struct BfsFlood {
    cursor: usize,
    edges: FrontierCursors,
}

impl BfsFlood {
    /// Creates a BFS flooder.
    pub fn new() -> Self {
        Self::default()
    }
}

impl WeakSearcher for BfsFlood {
    fn name(&self) -> &'static str {
        "bfs-flood"
    }

    fn next_request(
        &mut self,
        _task: &SearchTask,
        view: &DiscoveredView,
        _rng: &mut dyn RngCore,
    ) -> Option<(NodeId, EdgeId)> {
        // The discovery order only grows, so the cursor never goes back.
        while self.cursor < view.len() {
            let v = view.discovered()[self.cursor];
            if let Some(e) = self.edges.next_unexplored(view, v) {
                return Some((v, e));
            }
            self.cursor += 1;
        }
        None
    }

    fn reset(&mut self) {
        self.cursor = 0;
        self.edges.reset();
    }

    fn reserve(&mut self, nodes: usize, _edges: usize) {
        self.edges.reserve(nodes);
    }

    fn frontier_rescans(&self) -> u64 {
        self.edges.rescans()
    }
}

/// Depth-first exploration: expand the most recently discovered vertex
/// that still has unexplored edges. Amortized O(1) per request.
#[derive(Debug, Clone, Default)]
pub struct DfsWalk {
    stack: Vec<NodeId>,
    seen: usize,
    edges: FrontierCursors,
}

impl DfsWalk {
    /// Creates a DFS explorer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl WeakSearcher for DfsWalk {
    fn name(&self) -> &'static str {
        "dfs"
    }

    fn next_request(
        &mut self,
        _task: &SearchTask,
        view: &DiscoveredView,
        _rng: &mut dyn RngCore,
    ) -> Option<(NodeId, EdgeId)> {
        while self.seen < view.len() {
            self.stack.push(view.discovered()[self.seen]);
            self.seen += 1;
        }
        while let Some(&v) = self.stack.last() {
            if let Some(e) = self.edges.next_unexplored(view, v) {
                return Some((v, e));
            }
            // Exhausted vertices never regain unexplored edges.
            self.stack.pop();
        }
        None
    }

    fn reset(&mut self) {
        self.stack.clear();
        self.seen = 0;
        self.edges.reset();
    }

    fn reserve(&mut self, nodes: usize, _edges: usize) {
        self.stack.reserve(nodes);
        self.edges.reserve(nodes);
    }

    fn frontier_rescans(&self) -> u64 {
        self.edges.rescans()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_weak, SearchTask};
    use nonsearch_graph::UndirectedCsr;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0)
    }

    #[test]
    fn bfs_finds_near_targets_quickly() {
        // Star: target adjacent to the center start.
        let g = UndirectedCsr::from_edges(5, (1..5).map(|i| (0, i))).unwrap();
        let task = SearchTask::new(NodeId::new(0), NodeId::new(4));
        let o = run_weak(&g, &task, &mut BfsFlood::new(), &mut rng()).unwrap();
        assert!(o.found);
        assert!(o.requests <= 4);
    }

    #[test]
    fn bfs_never_exceeds_edge_slots() {
        let g = UndirectedCsr::from_edges(
            7,
            [
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 4),
                (3, 5),
                (4, 6),
                (5, 6),
                (1, 2),
            ],
        )
        .unwrap();
        let task = SearchTask::new(NodeId::new(0), NodeId::new(6));
        let o = run_weak(&g, &task, &mut BfsFlood::new(), &mut rng()).unwrap();
        assert!(o.found);
        assert!(o.requests <= g.edge_count());
    }

    #[test]
    fn bfs_gives_up_when_component_exhausted() {
        let g = UndirectedCsr::from_edges(4, [(0, 1)]).unwrap();
        let task = SearchTask::new(NodeId::new(0), NodeId::new(3));
        let o = run_weak(&g, &task, &mut BfsFlood::new(), &mut rng()).unwrap();
        assert!(!o.found);
        assert!(o.gave_up);
        assert_eq!(o.requests, 1); // explored the lone edge, then stuck
    }

    #[test]
    fn bfs_visits_in_breadth_order_on_binary_tree() {
        // Perfect binary tree: BFS must find the deepest node after
        // exploring every edge above it, i.e. in exactly n−1 requests.
        let g =
            UndirectedCsr::from_edges(7, [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)]).unwrap();
        let task = SearchTask::new(NodeId::new(0), NodeId::new(6));
        let o = run_weak(&g, &task, &mut BfsFlood::new(), &mut rng()).unwrap();
        assert!(o.found);
        assert_eq!(o.requests, 6);
    }

    #[test]
    fn dfs_explores_deep_first() {
        // Path: DFS equals BFS here and must reach the far end.
        let g = UndirectedCsr::from_edges(8, (1..8).map(|i| (i - 1, i))).unwrap();
        let task = SearchTask::new(NodeId::new(0), NodeId::new(7));
        let o = run_weak(&g, &task, &mut DfsWalk::new(), &mut rng()).unwrap();
        assert!(o.found);
        assert_eq!(o.requests, 7);
    }

    #[test]
    fn dfs_beats_bfs_on_a_deep_branch() {
        // Start at the hub of a broom: one long path plus many pendant
        // leaves. DFS dives down the path as soon as it discovers it.
        let mut edges: Vec<(usize, usize)> = (1..20).map(|i| (i - 1, i)).collect();
        for leaf in 20..40 {
            edges.push((0, leaf));
        }
        let g = UndirectedCsr::from_edges(40, edges).unwrap();
        let task = SearchTask::new(NodeId::new(0), NodeId::new(19));
        let bfs = run_weak(&g, &task, &mut BfsFlood::new(), &mut rng()).unwrap();
        let dfs = run_weak(&g, &task, &mut DfsWalk::new(), &mut rng()).unwrap();
        assert!(bfs.found && dfs.found);
        assert!(dfs.requests <= bfs.requests);
    }

    #[test]
    fn reuse_after_reset_is_deterministic() {
        let g = UndirectedCsr::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let task = SearchTask::new(NodeId::new(0), NodeId::new(5));
        let mut bfs = BfsFlood::new();
        let a = run_weak(&g, &task, &mut bfs, &mut rng()).unwrap();
        let b = run_weak(&g, &task, &mut bfs, &mut rng()).unwrap();
        assert_eq!(a, b);
    }
}
