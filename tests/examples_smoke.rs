//! Smoke test: the `quickstart` example must keep building and running.
//!
//! Examples are the workspace's front door and are not otherwise
//! exercised by `cargo test`; this guard keeps them from silently
//! rotting. It shells back out to the same `cargo` that is driving the
//! test run (the `CARGO` environment variable cargo sets for its
//! children), so profiles and the build cache are shared.

use std::process::Command;

#[test]
fn quickstart_example_runs() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let manifest = concat!(env!("CARGO_MANIFEST_DIR"), "/Cargo.toml");
    let output = Command::new(cargo)
        .args([
            "run",
            "--quiet",
            "--example",
            "quickstart",
            "--manifest-path",
            manifest,
        ])
        .output()
        .expect("spawning `cargo run --example quickstart`");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "quickstart exited with {:?}\nstdout:\n{stdout}\nstderr:\n{stderr}",
        output.status.code(),
    );
    // The example ends on the paper's headline comparison; check for a
    // stable phrase so a truncated or panicking run cannot pass.
    assert!(
        stdout.contains("lower bound"),
        "quickstart output missing expected content:\n{stdout}"
    );
}
