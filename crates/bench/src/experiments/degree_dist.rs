//! E8 — scale-freeness of the models: power-law degree distributions.
//!
//! Port of the legacy `exp_degree_dist` binary onto the engine: same
//! claim, table, and CCDF sketch, plus deterministic parallel trials,
//! `--corpus` graph sourcing (models the corpus doesn't store fall back
//! to generation with a note), and structured cell/profile records
//! under `--out`.

use super::{open_corpus, print_banner, resolve_source};
use nonsearch_analysis::{fit_power_law_mle, log_binned_histogram, Table};
use nonsearch_core::{
    BarabasiAlbertModel, CooperFriezeModel, GraphModel, MergedMoriModel, UniformAttachmentModel,
};
use nonsearch_corpus::Corpus;
use nonsearch_engine::{run_lanes, ExpContext, ExperimentSpec, JsonValue, TrialMeasure};
use nonsearch_generators::{MoriTree, SeedSequence};
use nonsearch_graph::degree_sequence;

pub(super) const SPEC: ExperimentSpec = ExperimentSpec {
    name: "degree-dist",
    id: "E8",
    claim: "Móri & Cooper–Frieze graphs are scale-free (power-law degrees); \
            uniform attachment is the non-scale-free control",
    default_seed: 0xE8,
    run,
};

/// Minimum degree included in the MLE tail fit (as in the legacy
/// binary: degrees ≥ 3, past the attachment-rule floor).
const FIT_MIN_DEGREE: usize = 3;

fn run(ctx: &mut ExpContext) {
    print_banner(
        ctx,
        "E8 / degree distributions",
        "Móri & Cooper–Frieze graphs are scale-free (power-law degrees); \
         uniform attachment is the non-scale-free control",
    );

    let default_n = if ctx.options.quick { 20_000 } else { 100_000 };
    let n = *ctx
        .options
        .sweep(&[default_n])
        .last()
        .expect("sweep of a non-empty default is non-empty");
    let trial_count = ctx.options.trial_count(5);
    let seeds = SeedSequence::new(ctx.seed);
    let corpus = open_corpus(ctx);

    let mut table = Table::with_columns(&["model", "fitted k", "ci95", "tail n", "KS"]);
    let mut cell = ModelCell {
        ctx,
        corpus: corpus.as_ref(),
        n,
        trial_count,
        seeds: &seeds,
        table: &mut table,
        model_idx: 0,
    };
    cell.run(&MergedMoriModel { p: 0.3, m: 1 });
    cell.run(&MergedMoriModel { p: 0.6, m: 1 });
    cell.run(&MergedMoriModel { p: 0.9, m: 1 });
    cell.run(&CooperFriezeModel::balanced(0.7));
    cell.run(&BarabasiAlbertModel { m: 2 });
    cell.run(&UniformAttachmentModel { m: 1 });
    println!("{table}");

    // CCDF sketch for one Móri run: log-binned densities. Display-only
    // (no records), sampled directly as in the legacy binary.
    let mut rng = seeds.subsequence(99).child_rng(0);
    let degrees = degree_sequence(&MoriTree::sample(n, 0.6, &mut rng).unwrap().undirected());
    println!("log-binned degree histogram, mori(p=0.6), n = {n}:");
    let mut hist_table = Table::with_columns(&["bin", "count", "density"]);
    for bin in log_binned_histogram(&degrees, 2.0) {
        hist_table.row(vec![
            format!("[{}, {})", bin.lo, bin.hi),
            bin.count.to_string(),
            format!("{:.2}", bin.density),
        ]);
    }
    println!("{hist_table}");
    println!("power-law tails (straight lines in log-log) for the attachment");
    println!("models; the uniform-attachment control decays geometrically.");
}

/// One model = one cell: lanes carry (exponent, KS, tail size) per
/// trial, aggregated bit-identically for any `--threads`.
struct ModelCell<'a, 'b> {
    ctx: &'a mut ExpContext<'b>,
    corpus: Option<&'a Corpus>,
    n: usize,
    trial_count: usize,
    seeds: &'a SeedSequence,
    table: &'a mut Table,
    model_idx: u64,
}

impl ModelCell<'_, '_> {
    fn run<M: GraphModel + Sync>(&mut self, model: &M) {
        let mi = self.model_idx;
        self.model_idx += 1;
        let _span = self.ctx.tracer.span("model-cell");
        let source = resolve_source(self.corpus, model, &[self.n]);
        let cell_seeds = self.seeds.subsequence(mi);
        // lint: allow(clock-env): profile wall-clock, reported in telemetry records, never aggregated
        let cell_start = std::time::Instant::now();
        let lanes = run_lanes(
            self.trial_count,
            3,
            self.ctx.options.threads,
            &cell_seeds,
            |trial, trial_seeds| {
                let graph = source.trial_graph(self.n, trial, &trial_seeds);
                let degrees = degree_sequence(&graph);
                match fit_power_law_mle(&degrees, FIT_MIN_DEGREE) {
                    Some(fit) => vec![
                        TrialMeasure::new(fit.exponent, true),
                        TrialMeasure::new(fit.ks_distance, true),
                        TrialMeasure::new(fit.tail_size as f64, true),
                    ],
                    None => vec![TrialMeasure::new(0.0, false); 3],
                }
            },
        );
        let wall_ms = cell_start.elapsed().as_secs_f64() * 1e3;
        let (exponent, ks, tail) = (&lanes[0], &lanes[1], &lanes[2]);
        self.table.row(vec![
            model.name(),
            format!("{:.2}", exponent.mean()),
            format!("{:.2}", exponent.ci95()),
            format!("{:.0}", tail.mean()),
            format!("{:.3}", ks.mean()),
        ]);
        self.ctx
            .writer
            .record_cell(vec![
                ("model", JsonValue::from(model.name())),
                ("n", JsonValue::from(self.n)),
                ("trials", JsonValue::from(self.trial_count)),
                ("seed", JsonValue::from(self.ctx.seed)),
                ("exponent", JsonValue::from(exponent.mean())),
                ("ci95", JsonValue::from(exponent.ci95())),
                ("ks", JsonValue::from(ks.mean())),
                ("tail", JsonValue::from(tail.mean())),
                ("fits", JsonValue::from(exponent.successes)),
            ])
            .expect("write cell record");
        if self.ctx.options.profile {
            // One "request" per trial: sample (or fetch) a graph of
            // size n, extract degrees, and fit the tail MLE once.
            let requests = self.trial_count as f64;
            self.ctx
                .writer
                .record_profile(vec![
                    ("model", JsonValue::from(model.name())),
                    ("n", JsonValue::from(self.n)),
                    ("trials", JsonValue::from(self.trial_count)),
                    ("requests", JsonValue::from(requests)),
                    ("wall_ms", JsonValue::from(wall_ms)),
                    (
                        "requests_per_sec",
                        JsonValue::from(requests / (wall_ms / 1e3).max(f64::EPSILON)),
                    ),
                ])
                .expect("write profile record");
        }
    }
}
