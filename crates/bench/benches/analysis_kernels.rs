//! Analysis kernels: power-law MLE, BFS distances, regression.

use criterion::{criterion_group, criterion_main, Criterion};
use nonsearch_analysis::{average_distance, fit_log_log, fit_power_law_mle, DegreeDistribution};
use nonsearch_generators::{rng_from_seed, MoriTree};
use nonsearch_graph::degree_sequence;

fn bench_analysis(c: &mut Criterion) {
    let tree = MoriTree::sample(50_000, 0.6, &mut rng_from_seed(1)).unwrap();
    let graph = tree.undirected();
    let degrees = degree_sequence(&graph);

    let mut group = c.benchmark_group("analysis");
    group.sample_size(10);

    group.bench_function("power_law_mle_50k", |b| {
        b.iter(|| fit_power_law_mle(&degrees, 2).unwrap());
    });

    group.bench_function("degree_distribution_50k", |b| {
        b.iter(|| DegreeDistribution::of(&graph));
    });

    group.bench_function("avg_distance_8_sources_50k", |b| {
        let mut rng = rng_from_seed(2);
        b.iter(|| average_distance(&graph, 8, &mut rng).unwrap());
    });

    group.bench_function("log_log_fit_1k_points", |b| {
        let xs: Vec<f64> = (1..1000).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.powf(0.5)).collect();
        b.iter(|| fit_log_log(&xs, &ys).unwrap());
    });

    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
