//! Error type for search execution.

use nonsearch_graph::{EdgeId, NodeId};
use std::error::Error;
use std::fmt;

/// Errors produced by the search oracles and runners.
///
/// These indicate *protocol violations* by an algorithm (asking about
/// vertices or edges it has not legitimately discovered), not search
/// failure — giving up or exhausting a budget is reported through
/// [`SearchOutcome`](crate::SearchOutcome) instead.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SearchError {
    /// A request referenced a vertex that has not been discovered.
    UndiscoveredVertex {
        /// The offending vertex.
        vertex: NodeId,
    },
    /// A request referenced an edge that is not incident to the vertex it
    /// was paired with (or was never revealed to the searcher).
    UnknownIncidence {
        /// The vertex of the request.
        vertex: NodeId,
        /// The edge of the request.
        edge: EdgeId,
    },
    /// The task's start or target vertex is outside the graph.
    TaskOutOfBounds {
        /// The offending vertex.
        vertex: NodeId,
        /// Vertices in the graph.
        node_count: usize,
    },
    /// A protocol parameter was outside its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// The offending value, formatted.
        value: String,
    },
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::UndiscoveredVertex { vertex } => {
                write!(f, "request names undiscovered vertex {vertex:?}")
            }
            SearchError::UnknownIncidence { vertex, edge } => {
                write!(
                    f,
                    "edge {edge:?} is not a known incidence of vertex {vertex:?}"
                )
            }
            SearchError::TaskOutOfBounds { vertex, node_count } => {
                write!(
                    f,
                    "task vertex {vertex:?} outside graph of {node_count} vertices"
                )
            }
            SearchError::InvalidParameter { name, value } => {
                write!(f, "parameter `{name}` = {value} is invalid")
            }
        }
    }
}

impl Error for SearchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = SearchError::UndiscoveredVertex {
            vertex: NodeId::new(3),
        };
        assert!(e.to_string().contains("v4"));
        let e = SearchError::UnknownIncidence {
            vertex: NodeId::new(0),
            edge: EdgeId::new(7),
        };
        assert!(e.to_string().contains("e7"));
        let e = SearchError::TaskOutOfBounds {
            vertex: NodeId::new(9),
            node_count: 5,
        };
        assert!(e.to_string().contains("5 vertices"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SearchError>();
    }
}
