//! The `xp corpus` subcommand family: `build`, `info`, `verify`.
//!
//! The `xp` binary dispatches `corpus ...` here before consulting the
//! experiment registry. Flags reuse the engine's shared set where they
//! apply (`--corpus DIR`, `--seed`, `--sizes`, `--trials`, `--quick`,
//! `--threads`) plus three builder-specific ones (`--model SPEC`,
//! `--variants K`, `--swaps N`). The corpus directory can also be given
//! as the first positional argument.

use crate::builder::{build, BuildSpec};
use crate::model_spec::DEFAULT_MODEL_SPEC;
use crate::store::{Corpus, LoadMode};
use nonsearch_engine::CliOptions;
use std::path::PathBuf;

/// The default size sweep — the `theorem1-weak` experiment's, so a
/// default build backs that experiment bit-identically (`--quick`
/// truncates it the same way the experiment does).
pub const DEFAULT_SIZES: &[usize] = &[512, 1024, 2048, 4096, 8192, 16384];
/// Default stored graphs per size (matches `theorem1-weak`'s trials).
pub const DEFAULT_TRIALS: usize = 12;
/// Default root seed (the `theorem1-weak` default seed).
pub const DEFAULT_SEED: u64 = 0xE1;

/// The `xp corpus` help text.
pub fn usage() -> String {
    format!(
        "xp corpus — persistent graph-ensemble store\n\
         \n\
         usage:\n\
         \x20 xp corpus build  [DIR] [flags]   generate and store an ensemble\n\
         \x20 xp corpus info   [DIR]           print the manifest summary\n\
         \x20 xp corpus verify [DIR]           recheck every file checksum\n\
         \n\
         the directory comes from the positional DIR or --corpus DIR.\n\
         \n\
         build flags (shared): --seed S, --sizes A,B,C, --trials N,\n\
         \x20 --quick, --threads N — defaults mirror theorem1-weak\n\
         \x20 (seed {DEFAULT_SEED} = {DEFAULT_SEED:#x}; --seed takes decimal,\n\
         \x20 sizes {DEFAULT_SIZES:?}, trials {DEFAULT_TRIALS}),\n\
         \x20 so a default-built corpus backs that experiment bit-identically.\n\
         build flags (corpus): --model SPEC (default {DEFAULT_MODEL_SPEC:?};\n\
         \x20 also ba:m=2, uniform:m=1, cooper-frieze:alpha=0.7,\n\
         \x20 power-law:k=2.5,dmin=1), --variants K (default 1 rewired\n\
         \x20 null model per graph), --swaps N (default 10 swaps/edge)\n\
         info/verify flag: --mmap — validate through the zero-copy\n\
         \x20 memory-mapped load path (what experiments run with --mmap use)\n\
         verify flag: --heal — quarantine corrupt blobs to quarantine/\n\
         \x20 and regenerate them from the manifest's model spec + seed,\n\
         \x20 re-checking against the original manifest checksums\n\
         experiment flag: --trust-checksums — skip per-load payload\n\
         \x20 hashing on corpus opens; verify always hashes regardless\n"
    )
}

/// The [`LoadMode`] requested by the shared flags (`--mmap`).
fn load_mode(options: &CliOptions) -> LoadMode {
    if options.mmap {
        LoadMode::Mmap
    } else {
        LoadMode::Heap
    }
}

/// Runs `xp corpus <args>`. Returns the process exit code.
pub fn main(args: &[String]) -> i32 {
    let Some(subcommand) = args.first().map(String::as_str) else {
        print!("{}", usage());
        return 2;
    };
    if matches!(subcommand, "help" | "--help" | "-h") {
        print!("{}", usage());
        return 0;
    }

    // Peel the positional DIR and the builder-specific flags; everything
    // else goes through the engine's strict shared parser.
    let mut rest = &args[1..];
    let mut dir: Option<PathBuf> = None;
    if let Some(first) = rest.first() {
        if !first.starts_with("--") {
            dir = Some(PathBuf::from(first));
            rest = &rest[1..];
        }
    }
    let mut model_spec = DEFAULT_MODEL_SPEC.to_string();
    let mut variants = 1usize;
    let mut swaps = 10usize;
    let mut shared: Vec<String> = Vec::new();
    let mut iter = rest.iter().peekable();
    while let Some(arg) = iter.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        let mut value = |name: &str| -> Result<String, String> {
            match &inline {
                Some(v) => Ok(v.clone()),
                None => match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        Ok(iter.next().expect("peeked value exists").clone())
                    }
                    _ => Err(format!("{name} requires a value")),
                },
            }
        };
        let outcome: Result<(), String> = match flag {
            "--model" => value("--model").map(|v| model_spec = v),
            "--variants" => value("--variants").and_then(|v| {
                v.parse()
                    .map(|n| variants = n)
                    .map_err(|e| format!("--variants: {e}"))
            }),
            "--swaps" => value("--swaps").and_then(|v| {
                v.parse()
                    .map(|n| swaps = n)
                    .map_err(|e| format!("--swaps: {e}"))
            }),
            _ => {
                shared.push(arg.clone());
                Ok(())
            }
        };
        if let Err(e) = outcome {
            eprintln!("xp corpus {subcommand}: {e}");
            return 2;
        }
    }
    let options = match CliOptions::from_args(shared) {
        Ok(options) => options,
        Err(e) => {
            eprintln!("xp corpus {subcommand}: {e}");
            return 2;
        }
    };
    let Some(dir) = dir.or(options.corpus.clone()) else {
        eprintln!("xp corpus {subcommand}: no directory (give DIR or --corpus DIR)");
        return 2;
    };

    match subcommand {
        "build" => {
            let spec = BuildSpec {
                model_spec,
                seed: options.seed_or(DEFAULT_SEED),
                sizes: options.sweep(DEFAULT_SIZES),
                trials: options.trial_count(DEFAULT_TRIALS),
                variants,
                swaps_per_edge: swaps,
                threads: options.threads,
            };
            match build(&dir, &spec) {
                Ok(report) => {
                    println!(
                        "[corpus build] {} graphs ({} files, {} KiB) in {} ms -> {}",
                        report.graphs,
                        report.files,
                        report.bytes / 1024,
                        report.wall_ms,
                        report.manifest_path.display()
                    );
                    0
                }
                Err(e) => {
                    eprintln!("xp corpus build: {e}");
                    1
                }
            }
        }
        "info" => match Corpus::open_with_trust(&dir, load_mode(&options), options.trust_checksums)
        {
            Ok(corpus) => {
                let m = corpus.manifest();
                println!("corpus at {}", dir.display());
                println!("  model:    {} (spec {:?})", m.model, m.model_spec);
                println!("  seed:     {:#x}", m.seed);
                println!("  sizes:    {:?}", m.sizes);
                println!("  trials:   {} per size", m.trials);
                println!(
                    "  variants: {} per graph ({} swaps/edge)",
                    m.variants, m.swaps_per_edge
                );
                println!(
                    "  graphs:   {} originals, {} files total",
                    m.graphs.len(),
                    m.file_count()
                );
                if let Some(b) = &m.build {
                    println!(
                        "  built:    git {} / {} threads / {} ms",
                        b.git, b.threads, b.wall_ms
                    );
                }
                0
            }
            Err(e) => {
                eprintln!("xp corpus info: {e}");
                1
            }
        },
        "verify" => match Corpus::open_healing(&dir, load_mode(&options), false, options.heal)
            .and_then(|c| c.verify())
        {
            Ok(report) => {
                let healed = if report.healed > 0 {
                    format!(
                        " ({} healed, {} quarantined)",
                        report.healed, report.quarantined
                    )
                } else {
                    String::new()
                };
                println!(
                    "[corpus verify] {}: {} files, {} KiB — OK{}{healed}",
                    dir.display(),
                    report.files,
                    report.bytes / 1024,
                    match report.mode {
                        LoadMode::Heap => "",
                        LoadMode::Mmap => " (validated via mmap)",
                    }
                );
                0
            }
            Err(e) => {
                eprintln!("xp corpus verify: {e}");
                1
            }
        },
        other => {
            eprintln!("xp corpus: unknown subcommand {other:?}");
            eprint!("{}", usage());
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> i32 {
        main(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("corpus_cli_{}_{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn help_and_errors_have_sane_exit_codes() {
        assert_eq!(run(&[]), 2);
        assert_eq!(run(&["help"]), 0);
        assert_eq!(run(&["info"]), 2); // no directory
        assert_eq!(run(&["frobnicate", "somewhere"]), 2);
        assert_eq!(run(&["build", "--model"]), 2); // missing value
        assert_eq!(run(&["build", "dir", "--wat"]), 2); // unknown shared flag
    }

    #[test]
    fn build_info_verify_lifecycle() {
        let dir = temp_dir("lifecycle");
        let dir_str = dir.to_str().unwrap();
        assert_eq!(
            run(&[
                "build",
                dir_str,
                "--sizes",
                "24,48",
                "--trials",
                "2",
                "--seed",
                "5",
                "--variants",
                "1",
                "--swaps",
                "3",
                "--threads",
                "1",
            ]),
            0
        );
        assert_eq!(run(&["info", dir_str]), 0);
        // --corpus works in place of the positional directory.
        assert_eq!(run(&["verify", "--corpus", dir_str]), 0);
        // The zero-copy load path validates the same corpus.
        assert_eq!(run(&["verify", dir_str, "--mmap"]), 0);
        assert_eq!(run(&["info", dir_str, "--mmap"]), 0);
        assert_eq!(run(&["info", dir_str, "--trust-checksums"]), 0);

        // Corrupt a file: verify must now fail.
        let corpus = Corpus::open(&dir).unwrap();
        let victim = dir.join(&corpus.manifest().graphs[0].file);
        let mut bytes = std::fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        std::fs::write(&victim, bytes).unwrap();
        assert_eq!(run(&["verify", dir_str]), 1);

        // --heal quarantines + regenerates, after which a plain verify
        // passes against the original manifest checksums.
        assert_eq!(run(&["verify", dir_str, "--heal"]), 0);
        assert!(dir.join(crate::store::QUARANTINE_DIR).is_dir());
        assert_eq!(run(&["verify", dir_str]), 0);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn info_on_missing_corpus_fails_cleanly() {
        let dir = temp_dir("missing");
        assert_eq!(run(&["info", dir.to_str().unwrap()]), 1);
    }
}
