//! Vendored, dependency-free subset of the `criterion` benchmarking API.
//!
//! The build environment has no crates.io access, so this crate provides
//! just enough of criterion's surface for the workspace's five bench
//! targets to compile and run: [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple — each benchmark is warmed up
//! once and timed over a fixed batch with `std::time::Instant`, printing
//! `name ... <mean time>` per benchmark. That keeps `cargo bench` useful
//! for coarse regression spotting while the real statistical machinery
//! stays swappable (restoring upstream criterion is a manifest change).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Times closures handed to it by benchmark functions.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly, recording total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then a fixed small batch: enough to catch
        // order-of-magnitude regressions without criterion's adaptive
        // sampling.
        black_box(f());
        let iters = 10u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<50} (no measurement)");
        } else {
            let per = self.elapsed / self.iters as u32;
            println!("{name:<50} {per:>12.2?}/iter");
        }
    }
}

/// A benchmark identifier with a function name and a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just a parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things that can name a benchmark within a group.
pub trait IntoBenchmarkId {
    /// Renders the identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub ignores time limits.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&full);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, In, F>(&mut self, id: I, input: &In, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher, &In),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&full);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(id);
        self
    }
}

/// Bundles benchmark functions into a callable group, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` from one or more [`criterion_group!`] names.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
