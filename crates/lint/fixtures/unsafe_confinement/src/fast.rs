//! Deliberate violation: unsafe outside the blessed modules.

pub fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}
