//! A uniform interface over the graph models used in experiments.

use nonsearch_engine::GraphSource;
use nonsearch_generators::{
    power_law_degree_sequence, rng_from_seed, BarabasiAlbert, ConfigModel, CooperFrieze,
    CooperFriezeConfig, MergedMori, PowerLawConfig, SeedSequence, SimplificationPolicy,
    UniformAttachment,
};
use nonsearch_graph::UndirectedCsr;
use rand_chacha::ChaCha8Rng;

/// A random-graph model that can be sampled at any size.
///
/// The certification machinery ([`certify`](crate::certify)) quantifies
/// over models through this trait; implementations wrap the generators
/// crate with fixed parameters.
pub trait GraphModel {
    /// Human-readable name including parameters, e.g. `mori(p=0.5,m=2)`.
    fn name(&self) -> String;

    /// Samples the unoriented graph on (approximately) `n` vertices.
    ///
    /// # Panics
    ///
    /// Implementations panic on sizes below the model's seed size; the
    /// experiment configs only use valid sizes.
    fn sample_graph(&self, n: usize, rng: &mut ChaCha8Rng) -> UndirectedCsr;
}

/// The merged Móri graph `G^{(m)}` of Theorem 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergedMoriModel {
    /// Mixing parameter `p ∈ [0, 1]`.
    pub p: f64,
    /// Out-degree `m ≥ 1` (1 = plain Móri tree).
    pub m: usize,
}

impl GraphModel for MergedMoriModel {
    fn name(&self) -> String {
        format!("mori(p={},m={})", self.p, self.m)
    }

    fn sample_graph(&self, n: usize, rng: &mut ChaCha8Rng) -> UndirectedCsr {
        let mut graph = MergedMori::sample(n, self.m, self.p, rng)
            .expect("experiment sizes are valid")
            .undirected();
        graph.shuffle_slots(rng);
        graph
    }
}

/// The Cooper–Frieze model of Theorem 2.
#[derive(Debug, Clone, PartialEq)]
pub struct CooperFriezeModel {
    /// Full parameter set.
    pub config: CooperFriezeConfig,
}

impl CooperFriezeModel {
    /// The balanced single-edge configuration at a given `α`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha ∉ (0, 1]`.
    pub fn balanced(alpha: f64) -> Self {
        CooperFriezeModel {
            config: CooperFriezeConfig::balanced(alpha).expect("alpha in (0,1]"),
        }
    }
}

impl GraphModel for CooperFriezeModel {
    fn name(&self) -> String {
        format!(
            "cooper-frieze(a={},b={},g={},d={})",
            self.config.alpha(),
            self.config.beta(),
            self.config.gamma(),
            self.config.delta()
        )
    }

    fn sample_graph(&self, n: usize, rng: &mut ChaCha8Rng) -> UndirectedCsr {
        let mut graph = CooperFrieze::sample(n, &self.config, rng)
            .expect("experiment sizes are valid")
            .undirected();
        graph.shuffle_slots(rng);
        graph
    }
}

/// The Barabási–Albert baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarabasiAlbertModel {
    /// Edges per arriving vertex.
    pub m: usize,
}

impl GraphModel for BarabasiAlbertModel {
    fn name(&self) -> String {
        format!("barabasi-albert(m={})", self.m)
    }

    fn sample_graph(&self, n: usize, rng: &mut ChaCha8Rng) -> UndirectedCsr {
        let mut graph = BarabasiAlbert::sample(n, self.m, rng)
            .expect("experiment sizes are valid")
            .undirected();
        graph.shuffle_slots(rng);
        graph
    }
}

/// The uniform-attachment baseline (`p = 0` end of the spectrum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformAttachmentModel {
    /// Edges per arriving vertex.
    pub m: usize,
}

impl GraphModel for UniformAttachmentModel {
    fn name(&self) -> String {
        format!("uniform-attachment(m={})", self.m)
    }

    fn sample_graph(&self, n: usize, rng: &mut ChaCha8Rng) -> UndirectedCsr {
        let mut graph = UniformAttachment::sample(n, self.m, rng)
            .expect("experiment sizes are valid")
            .undirected();
        graph.shuffle_slots(rng);
        graph
    }
}

/// The giant component of a Molloy–Reed power-law graph — the "pure
/// random graph" substrate of Adamic et al. Note the returned graph has
/// fewer than `n` vertices (the giant's size); experiment code reads the
/// actual `node_count()`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawGiantModel {
    /// Degree exponent `k > 1` (real networks: `k ∈ (2, 3)`).
    pub exponent: f64,
    /// Minimum degree.
    pub d_min: usize,
}

impl GraphModel for PowerLawGiantModel {
    fn name(&self) -> String {
        format!("power-law-giant(k={},dmin={})", self.exponent, self.d_min)
    }

    fn sample_graph(&self, n: usize, rng: &mut ChaCha8Rng) -> UndirectedCsr {
        let cfg = PowerLawConfig::new(self.exponent, self.d_min)
            .expect("exponent is validated by construction");
        let degrees = power_law_degree_sequence(n, &cfg, rng).expect("valid power-law config");
        let graph = ConfigModel::sample(&degrees, SimplificationPolicy::Multigraph, rng)
            .expect("even stub sum by construction");
        let (mut giant, _) = graph.graph().giant_component();
        giant.shuffle_slots(rng);
        giant
    }
}

/// Convenience: sample any model from a plain `u64` seed.
pub fn sample_with_seed(model: &dyn GraphModel, n: usize, seed: u64) -> UndirectedCsr {
    let mut rng = rng_from_seed(seed);
    model.sample_graph(n, &mut rng)
}

/// The generate-per-trial [`GraphSource`]: wraps a [`GraphModel`] and
/// samples a fresh graph for every trial from the trial's own RNG
/// stream (`trial_seeds.child_rng(0)` — the workspace convention, which
/// leaves child indices `1..` for searcher streams).
///
/// This is the default supply for every experiment; the corpus-backed
/// alternative lives in `nonsearch_corpus`. A corpus built with the
/// same model, seed, and sizes serves **bit-identical** graphs, which
/// is what lets `xp <experiment> --corpus DIR` reproduce the
/// generate-per-trial numbers exactly.
pub struct ModelSource<'a, M: ?Sized> {
    model: &'a M,
}

impl<'a, M: GraphModel + Sync + ?Sized> ModelSource<'a, M> {
    /// Wraps `model` as a trial-graph source.
    pub fn new(model: &'a M) -> ModelSource<'a, M> {
        ModelSource { model }
    }
}

impl<M: GraphModel + Sync + ?Sized> GraphSource for ModelSource<'_, M> {
    fn trial_graph(
        &self,
        n: usize,
        _trial: usize,
        seeds: &SeedSequence,
    ) -> std::sync::Arc<UndirectedCsr> {
        let mut rng = seeds.child_rng(0);
        std::sync::Arc::new(self.model.sample_graph(n, &mut rng))
    }

    fn describe(&self) -> String {
        format!("generate:{}", self.model.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonsearch_graph::is_connected;

    #[test]
    fn all_models_sample_connected_graphs() {
        let models: Vec<Box<dyn GraphModel>> = vec![
            Box::new(MergedMoriModel { p: 0.5, m: 1 }),
            Box::new(MergedMoriModel { p: 0.5, m: 3 }),
            Box::new(CooperFriezeModel::balanced(0.7)),
            Box::new(BarabasiAlbertModel { m: 2 }),
            Box::new(UniformAttachmentModel { m: 2 }),
            Box::new(PowerLawGiantModel {
                exponent: 2.5,
                d_min: 1,
            }),
        ];
        for model in &models {
            let g = sample_with_seed(model.as_ref(), 200, 1);
            assert!(is_connected(&g), "{} disconnected", model.name());
            assert!(g.node_count() > 50, "{} too small", model.name());
        }
    }

    #[test]
    fn names_include_parameters() {
        assert_eq!(MergedMoriModel { p: 0.5, m: 2 }.name(), "mori(p=0.5,m=2)");
        assert!(CooperFriezeModel::balanced(0.8).name().contains("a=0.8"));
        assert!(PowerLawGiantModel {
            exponent: 2.3,
            d_min: 1
        }
        .name()
        .contains("k=2.3"));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let model = MergedMoriModel { p: 0.4, m: 2 };
        let a = sample_with_seed(&model, 100, 9);
        let b = sample_with_seed(&model, 100, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn giant_component_is_most_of_the_graph_for_small_k() {
        let model = PowerLawGiantModel {
            exponent: 2.2,
            d_min: 1,
        };
        let g = sample_with_seed(&model, 2000, 3);
        assert!(g.node_count() > 1000, "giant = {}", g.node_count());
    }
}
