//! Summary statistics for experiment measurements.

use std::fmt;

/// Summary statistics of a sample of `f64` measurements.
///
/// # Example
///
/// ```
/// use nonsearch_analysis::SampleStats;
///
/// let s = SampleStats::from_slice(&[1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// assert!((s.median() - 2.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SampleStats {
    count: usize,
    mean: f64,
    variance: f64,
    min: f64,
    max: f64,
    sorted: Vec<f64>,
}

impl SampleStats {
    /// Computes statistics for `data`.
    ///
    /// Returns `None` if `data` is empty or contains non-finite values.
    pub fn from_slice(data: &[f64]) -> Option<SampleStats> {
        if data.is_empty() || data.iter().any(|x| !x.is_finite()) {
            return None;
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        // Unbiased (n−1) sample variance; zero for singleton samples.
        let variance = if data.len() > 1 {
            data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Some(SampleStats {
            count: data.len(),
            mean,
            variance,
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
            sorted,
        })
    }

    /// Computes statistics over an iterator of integer counts (e.g.
    /// request counts).
    pub fn from_counts<I: IntoIterator<Item = usize>>(iter: I) -> Option<SampleStats> {
        let data: Vec<f64> = iter.into_iter().map(|c| c as f64).collect();
        SampleStats::from_slice(&data)
    }

    /// Sample size.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance.
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        self.std_dev() / (self.count as f64).sqrt()
    }

    /// Half-width of the normal-approximation 95% confidence interval for
    /// the mean (`1.96 · SE`).
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_error()
    }

    /// Minimum observation.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Median (interpolated for even sizes).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// The accumulated samples in ascending order.
    ///
    /// This is what [`StreamingStats`](crate::StreamingStats) replays to
    /// convert a two-pass summary into a streaming accumulator.
    pub fn samples_sorted(&self) -> &[f64] {
        &self.sorted
    }

    /// Converts into a single-pass accumulator with the same moments
    /// (to floating-point accuracy).
    pub fn to_streaming(&self) -> crate::StreamingStats {
        crate::StreamingStats::from(self)
    }

    /// Linear-interpolated quantile, `q ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }
}

impl fmt::Display for SampleStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean={:.4} ±{:.4} (95% CI, n={}) median={:.4} range=[{:.4}, {:.4}]",
            self.mean,
            self.ci95_half_width(),
            self.count,
            self.median(),
            self.min,
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = SampleStats::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic dataset is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_and_nonfinite_rejected() {
        assert!(SampleStats::from_slice(&[]).is_none());
        assert!(SampleStats::from_slice(&[1.0, f64::NAN]).is_none());
        assert!(SampleStats::from_slice(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn singleton() {
        let s = SampleStats::from_slice(&[3.5]).unwrap();
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.median(), 3.5);
        assert_eq!(s.quantile(0.99), 3.5);
    }

    #[test]
    fn median_interpolates() {
        let odd = SampleStats::from_slice(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(odd.median(), 2.0);
        let even = SampleStats::from_slice(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert!((even.median() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let s = SampleStats::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 5.0);
        assert!((s.quantile(0.25) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn bad_quantile_panics() {
        let s = SampleStats::from_slice(&[1.0]).unwrap();
        let _ = s.quantile(1.5);
    }

    #[test]
    fn from_counts() {
        let s = SampleStats::from_counts([1usize, 2, 3]).unwrap();
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert!(SampleStats::from_counts(std::iter::empty()).is_none());
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let few = SampleStats::from_slice(&[1.0, 2.0, 3.0]).unwrap();
        let many: Vec<f64> = (0..300).map(|i| (i % 3) as f64 + 1.0).collect();
        let many = SampleStats::from_slice(&many).unwrap();
        assert!(many.ci95_half_width() < few.ci95_half_width());
    }

    #[test]
    fn display_mentions_ci() {
        let s = SampleStats::from_slice(&[1.0, 2.0]).unwrap();
        let text = s.to_string();
        assert!(text.contains("95% CI"));
        assert!(text.contains("n=2"));
    }
}
