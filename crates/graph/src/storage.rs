//! Backing storage for [`UndirectedCsr`](crate::UndirectedCsr): owned
//! vectors or a borrowed view into a shared byte region.
//!
//! The binary `.nsg` corpus format stores the exact CSR buffers —
//! little-endian `u64` offsets followed by `(u32, u32)` slot and edge
//! pairs — so on a 64-bit little-endian target those file bytes *are*
//! valid `&[usize]` / `&[(NodeId, EdgeId)]` slices, provided the region
//! is suitably aligned. [`CsrStorage::from_region`] performs a validated
//! cast: it proves (once, at construction) that the target's in-memory
//! layout of the id tuples matches the on-disk [`RawSlotPair`] layout,
//! checks alignment and bounds of every buffer, and only then reborrows
//! the region as typed slices. Unsupported targets (big-endian, 32-bit)
//! and misaligned regions are reported as errors so callers can fall
//! back to an owned decode — the cast is never assumed.
//!
//! This is the single module in the crate that uses `unsafe`; every
//! other module keeps the crate-level `deny(unsafe_code)`.
#![allow(unsafe_code)]

use crate::{EdgeId, NodeId};
use std::ops::Range;
use std::sync::Arc;

/// A shared, immutable byte region that can back a borrowed CSR graph —
/// typically a memory-mapped `.nsg` file, or the file's bytes read into
/// a `Vec<u8>` where mapping is unavailable.
///
/// # Safety
///
/// Implementors must guarantee that, for the whole lifetime of the
/// value, `bytes()` returns the *same* pointer and length on every call
/// and the underlying memory is never mutated or unmapped. Borrowed CSR
/// storage caches typed slices into the region at construction time and
/// dereferences them for as long as the region is alive.
pub unsafe trait CsrBytes: Send + Sync + 'static {
    /// The backing bytes. Must be pointer-stable (see the trait docs).
    fn bytes(&self) -> &[u8];
}

// A `Vec` behind an `Arc` is never mutated, so its heap buffer is
// pointer-stable until the last `Arc` drops.
unsafe impl CsrBytes for Vec<u8> {
    fn bytes(&self) -> &[u8] {
        self
    }
}

/// A byte buffer whose start is guaranteed 8-byte aligned (it is backed
/// by `u64` words), so a `.nsg` image held on the heap can serve
/// zero-copy CSR views just like a page-aligned file mapping. This is
/// the fallback region type where `mmap` is unavailable — a plain
/// `Vec<u8>` offers no alignment guarantee.
pub struct AlignedBytes {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBytes {
    /// Copies `bytes` into an 8-byte-aligned buffer.
    pub fn from_bytes(bytes: &[u8]) -> AlignedBytes {
        let mut words = vec![0u64; bytes.len().div_ceil(8)];
        for (word, chunk) in words.iter_mut().zip(bytes.chunks(8)) {
            let mut b = [0u8; 8];
            b[..chunk.len()].copy_from_slice(chunk);
            *word = u64::from_ne_bytes(b);
        }
        AlignedBytes {
            words,
            len: bytes.len(),
        }
    }

    /// The buffered length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

// The word buffer is never mutated after construction, so the byte view
// is pointer-stable behind an `Arc` exactly like `Vec<u8>`.
unsafe impl CsrBytes for AlignedBytes {
    fn bytes(&self) -> &[u8] {
        // SAFETY: any initialized memory is valid as bytes; `len` never
        // exceeds the word buffer (from_bytes rounds the words up).
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
    }
}

/// Byte ranges of the three CSR buffers inside a [`CsrBytes`] region:
/// `offsets` as `u64`s, then `slots` and `edge_list` as `(u32, u32)`
/// pairs, all little-endian.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrLayout {
    /// Byte range of the `(n + 1)` vertex offsets (`u64` each).
    pub offsets: Range<usize>,
    /// Byte range of the `2m` incidence slots ([`RawSlotPair`] each).
    pub slots: Range<usize>,
    /// Byte range of the `m` edge-endpoint pairs ([`RawSlotPair`] each).
    pub edge_list: Range<usize>,
}

/// The on-disk shape of one incidence slot (or edge-endpoint pair): two
/// little-endian `u32`s. `#[repr(C)]` pins the field order, making this
/// the layout that [`CsrStorage::from_region`] validates `(NodeId,
/// EdgeId)` and `(NodeId, NodeId)` against before casting.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawSlotPair {
    /// First `u32` of the pair (slot neighbor / edge source).
    pub a: u32,
    /// Second `u32` of the pair (slot edge id / edge target).
    pub b: u32,
}

/// The buffers behind an `UndirectedCsr`: owned vectors, or slices
/// borrowed from a shared byte region.
#[derive(Clone)]
pub(crate) enum CsrStorage {
    /// The classic representation: three heap-owned vectors.
    Owned {
        offsets: Vec<usize>,
        slots: Vec<(NodeId, EdgeId)>,
        edge_list: Vec<(NodeId, NodeId)>,
    },
    /// Slices into a shared byte region (zero-copy).
    Borrowed(BorrowedCsr),
}

/// Typed slices into a kept-alive byte region.
///
/// The slices are lifetime-erased to `'static`; this is sound because
/// they point into `region`, whose [`CsrBytes`] contract guarantees a
/// pointer-stable, immutable buffer for as long as the `Arc` lives, and
/// the `Arc` lives at least as long as this struct. Accessors reborrow
/// them at the storage's own (shorter) lifetime.
#[derive(Clone)]
pub(crate) struct BorrowedCsr {
    /// Keeps the byte region alive; the slices below point into it.
    _region: Arc<dyn CsrBytes>,
    offsets: &'static [usize],
    slots: &'static [(NodeId, EdgeId)],
    edge_list: &'static [(NodeId, NodeId)],
}

impl CsrStorage {
    /// Borrows the three CSR buffers out of `region` at the byte ranges
    /// given by `layout`, without copying.
    ///
    /// Errors (with a human-readable reason) if the target cannot
    /// express the cast ([`zero_copy_support`]), a range is out of
    /// bounds or not a whole number of elements, or a buffer start is
    /// misaligned for its element type. Structural CSR validation is the
    /// caller's job — this function only proves the *memory* view safe.
    pub(crate) fn from_region(
        region: Arc<dyn CsrBytes>,
        layout: &CsrLayout,
    ) -> Result<CsrStorage, String> {
        zero_copy_support()?;
        let bytes = region.bytes();
        // SAFETY (for all three casts below): `cast_slice` proves the
        // byte range is in bounds, a whole number of elements, and that
        // its start is aligned for the element type; the layout probes in
        // `zero_copy_support` proved the element types are exactly their
        // on-disk little-endian shapes. The `'static` lifetime erasure is
        // sound because `region`'s `CsrBytes` contract pins the buffer
        // for as long as the `Arc` (stored alongside the slices) lives.
        let offsets = unsafe { cast_slice::<usize>(bytes, &layout.offsets, "offsets")? };
        let slots = unsafe { cast_slice::<(NodeId, EdgeId)>(bytes, &layout.slots, "slots")? };
        let edge_list =
            unsafe { cast_slice::<(NodeId, NodeId)>(bytes, &layout.edge_list, "edge_list")? };
        Ok(CsrStorage::Borrowed(BorrowedCsr {
            offsets,
            slots,
            edge_list,
            _region: region,
        }))
    }

    #[inline]
    pub(crate) fn offsets(&self) -> &[usize] {
        match self {
            CsrStorage::Owned { offsets, .. } => offsets,
            CsrStorage::Borrowed(b) => b.offsets,
        }
    }

    #[inline]
    pub(crate) fn slots(&self) -> &[(NodeId, EdgeId)] {
        match self {
            CsrStorage::Owned { slots, .. } => slots,
            CsrStorage::Borrowed(b) => b.slots,
        }
    }

    #[inline]
    pub(crate) fn edge_list(&self) -> &[(NodeId, NodeId)] {
        match self {
            CsrStorage::Owned { edge_list, .. } => edge_list,
            CsrStorage::Borrowed(b) => b.edge_list,
        }
    }

    pub(crate) fn is_borrowed(&self) -> bool {
        matches!(self, CsrStorage::Borrowed(_))
    }

    /// Converts borrowed storage into owned vectors (no-op when already
    /// owned), then returns the offsets alongside the mutable slot
    /// buffer — the pair slot-shuffling needs.
    pub(crate) fn offsets_and_slots_mut(&mut self) -> (&[usize], &mut [(NodeId, EdgeId)]) {
        self.make_owned();
        match self {
            CsrStorage::Owned { offsets, slots, .. } => (offsets, slots),
            CsrStorage::Borrowed(_) => unreachable!("make_owned left storage borrowed"),
        }
    }

    /// Copies borrowed slices into owned vectors, detaching the graph
    /// from its backing region.
    pub(crate) fn make_owned(&mut self) {
        if let CsrStorage::Borrowed(b) = self {
            *self = CsrStorage::Owned {
                offsets: b.offsets.to_vec(),
                slots: b.slots.to_vec(),
                edge_list: b.edge_list.to_vec(),
            };
        }
    }
}

/// Whether this target can reinterpret `.nsg` payload bytes as CSR
/// slices directly: it must be 64-bit little-endian, and the in-memory
/// layouts of `usize`, `(NodeId, EdgeId)`, and `(NodeId, NodeId)` must
/// match the on-disk `u64` / [`RawSlotPair`] shapes. The tuple layouts
/// are not guaranteed by the language, so they are *probed* with known
/// bit patterns rather than assumed; on any mismatch callers fall back
/// to an owned decode.
pub fn zero_copy_support() -> Result<(), String> {
    #[cfg(not(all(target_endian = "little", target_pointer_width = "64")))]
    {
        Err("zero-copy CSR views need a 64-bit little-endian target".to_string())
    }
    #[cfg(all(target_endian = "little", target_pointer_width = "64"))]
    {
        use std::mem::{align_of, size_of, transmute_copy};
        fn probe<T>(value: T, expect: [u8; 8], what: &str) -> Result<(), String> {
            if size_of::<T>() != 8 {
                return Err(format!(
                    "{what} is {} bytes in memory, not the on-disk 8",
                    size_of::<T>()
                ));
            }
            if align_of::<T>() > 8 {
                return Err(format!("{what} is over-aligned ({})", align_of::<T>()));
            }
            // SAFETY: `T` was just proven to be exactly 8 bytes.
            let raw: [u8; 8] = unsafe { transmute_copy(&value) };
            if raw != expect {
                return Err(format!("{what} has an unexpected in-memory byte layout"));
            }
            Ok(())
        }
        let le = 0x0807_0605_0403_0201u64.to_le_bytes();
        probe(0x0807_0605_0403_0201usize, le, "usize")?;
        probe(
            RawSlotPair {
                a: 0x0403_0201,
                b: 0x0807_0605,
            },
            le,
            "RawSlotPair",
        )?;
        probe(
            (NodeId::new(0x0403_0201), EdgeId::new(0x0807_0605)),
            le,
            "(NodeId, EdgeId)",
        )?;
        probe(
            (NodeId::new(0x0403_0201), NodeId::new(0x0807_0605)),
            le,
            "(NodeId, NodeId)",
        )?;
        Ok(())
    }
}

/// Reinterprets `bytes[range]` as a `T` slice with a `'static` lifetime.
///
/// # Safety
///
/// The caller must guarantee that `T`'s in-memory layout matches the
/// raw bytes (see [`zero_copy_support`]) and that the bytes outlive the
/// returned slice and are never mutated. Bounds, element-size, and
/// alignment violations are caught here and reported as errors.
unsafe fn cast_slice<T>(
    bytes: &[u8],
    range: &Range<usize>,
    what: &str,
) -> Result<&'static [T], String> {
    let elem = std::mem::size_of::<T>();
    if range.start > range.end || range.end > bytes.len() {
        return Err(format!(
            "{what} byte range {range:?} exceeds the {}-byte region",
            bytes.len()
        ));
    }
    let len_bytes = range.end - range.start;
    if !len_bytes.is_multiple_of(elem) {
        return Err(format!(
            "{what} byte range {range:?} is not a whole number of {elem}-byte elements"
        ));
    }
    let ptr = bytes[range.start..range.end].as_ptr();
    if !(ptr as usize).is_multiple_of(std::mem::align_of::<T>()) {
        return Err(format!(
            "{what} buffer at {ptr:p} is misaligned for its element type"
        ));
    }
    // SAFETY: in-bounds, aligned, whole elements (checked above); layout
    // and lifetime are the caller's contract.
    Ok(unsafe { std::slice::from_raw_parts(ptr.cast::<T>(), len_bytes / elem) })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Encodes a tiny CSR region by hand: the 1-edge graph 0—1.
    /// offsets [0, 1, 2], slots [(1, e0), (0, e0)], edges [(0, 1)].
    /// `AlignedBytes` makes the alignment tests below deterministic.
    fn tiny_region() -> (AlignedBytes, CsrLayout) {
        let mut bytes = Vec::new();
        for o in [0u64, 1, 2] {
            bytes.extend_from_slice(&o.to_le_bytes());
        }
        for (a, b) in [(1u32, 0u32), (0, 0)] {
            bytes.extend_from_slice(&a.to_le_bytes());
            bytes.extend_from_slice(&b.to_le_bytes());
        }
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        let layout = CsrLayout {
            offsets: 0..24,
            slots: 24..40,
            edge_list: 40..48,
        };
        (AlignedBytes::from_bytes(&bytes), layout)
    }

    #[test]
    fn aligned_bytes_roundtrip_and_alignment() {
        for len in [0usize, 1, 7, 8, 9, 48] {
            let src: Vec<u8> = (0..len as u8).collect();
            let aligned = AlignedBytes::from_bytes(&src);
            assert_eq!(aligned.bytes(), &src[..]);
            assert_eq!(aligned.len(), len);
            assert_eq!(aligned.is_empty(), len == 0);
            assert_eq!(aligned.bytes().as_ptr() as usize % 8, 0);
        }
    }

    #[test]
    fn this_target_supports_zero_copy() {
        // The whole test suite runs on x86-64/aarch64 linux; if this
        // starts failing the owned-decode fallback still keeps every
        // reader correct, but the perf story should be revisited.
        #[cfg(all(target_endian = "little", target_pointer_width = "64"))]
        zero_copy_support().unwrap();
    }

    #[test]
    fn from_region_borrows_the_expected_slices() {
        let (bytes, layout) = tiny_region();
        let storage = CsrStorage::from_region(Arc::new(bytes), &layout).unwrap();
        assert!(storage.is_borrowed());
        assert_eq!(storage.offsets(), &[0, 1, 2]);
        assert_eq!(
            storage.slots(),
            &[
                (NodeId::new(1), EdgeId::new(0)),
                (NodeId::new(0), EdgeId::new(0)),
            ]
        );
        assert_eq!(storage.edge_list(), &[(NodeId::new(0), NodeId::new(1))]);
    }

    #[test]
    fn clone_shares_the_region() {
        let (bytes, layout) = tiny_region();
        let storage = CsrStorage::from_region(Arc::new(bytes), &layout).unwrap();
        let cloned = storage.clone();
        assert!(cloned.is_borrowed());
        assert_eq!(storage.offsets(), cloned.offsets());
        assert_eq!(
            storage.slots().as_ptr(),
            cloned.slots().as_ptr(),
            "clone reborrows the same bytes"
        );
    }

    #[test]
    fn make_owned_detaches_from_the_region() {
        let (bytes, layout) = tiny_region();
        let mut storage = CsrStorage::from_region(Arc::new(bytes), &layout).unwrap();
        let borrowed_ptr = storage.slots().as_ptr();
        storage.make_owned();
        assert!(!storage.is_borrowed());
        assert_ne!(storage.slots().as_ptr(), borrowed_ptr);
        assert_eq!(storage.offsets(), &[0, 1, 2]);
        // Mutable access on owned storage stays owned.
        let (offsets, slots) = storage.offsets_and_slots_mut();
        assert_eq!(offsets.len(), 3);
        slots[0] = (NodeId::new(0), EdgeId::new(0));
        assert!(!storage.is_borrowed());
    }

    #[test]
    fn bad_layouts_are_rejected() {
        let (bytes, layout) = tiny_region();
        let region: Arc<dyn CsrBytes> = Arc::new(bytes);

        // Range beyond the region.
        let mut far = layout.clone();
        far.edge_list = 40..56;
        let err = CsrStorage::from_region(Arc::clone(&region), &far)
            .err()
            .unwrap();
        assert!(err.contains("exceeds"), "{err}");

        // Inverted range.
        let mut inverted = layout.clone();
        inverted.slots = Range { start: 40, end: 24 };
        assert!(CsrStorage::from_region(Arc::clone(&region), &inverted).is_err());

        // Ragged element count.
        let mut ragged = layout.clone();
        ragged.offsets = 0..20;
        let err = CsrStorage::from_region(Arc::clone(&region), &ragged)
            .err()
            .unwrap();
        assert!(err.contains("whole number"), "{err}");

        // Misaligned offsets start (u64 wants 8-byte alignment).
        let mut shifted = layout;
        shifted.offsets = 4..20;
        let err = CsrStorage::from_region(region, &shifted).err().unwrap();
        assert!(err.contains("misaligned"), "{err}");
    }

    #[test]
    fn storage_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CsrStorage>();
    }
}
