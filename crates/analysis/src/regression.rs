//! Ordinary least-squares regression, including the log–log form used to
//! estimate scaling exponents.
//!
//! Almost every claim in the paper is about an exponent: search cost
//! `Ω(n^{1/2})`, max degree `t^p`, Adamic's `n^{2(1−2/k)}`. Fitting
//! `log y = a·log x + b` recovers the measured exponent `a`.

use std::fmt;

/// Result of an OLS fit `y ≈ slope · x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination `R²` (1.0 for a perfect fit; defined
    /// as 1.0 when the response is constant and fitted exactly).
    pub r_squared: f64,
}

impl LinearFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

impl fmt::Display for LinearFit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "slope={:.4} intercept={:.4} R²={:.4}",
            self.slope, self.intercept, self.r_squared
        )
    }
}

/// Fits `y ≈ slope·x + intercept` by least squares.
///
/// Returns `None` if fewer than two points are given, lengths differ,
/// any value is non-finite, or all `x` are identical.
pub fn fit_linear(x: &[f64], y: &[f64]) -> Option<LinearFit> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    if x.iter().chain(y.iter()).any(|v| !v.is_finite()) {
        return None;
    }
    let n = x.len() as f64;
    let mean_x = x.iter().sum::<f64>() / n;
    let mean_y = y.iter().sum::<f64>() / n;
    let sxx: f64 = x.iter().map(|xi| (xi - mean_x).powi(2)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = x
        .iter()
        .zip(y.iter())
        .map(|(xi, yi)| (xi - mean_x) * (yi - mean_y))
        .sum();
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let ss_tot: f64 = y.iter().map(|yi| (yi - mean_y).powi(2)).sum();
    let ss_res: f64 = x
        .iter()
        .zip(y.iter())
        .map(|(xi, yi)| (yi - (slope * xi + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(LinearFit {
        slope,
        intercept,
        r_squared,
    })
}

/// Fits `y ≈ C · x^slope` by regressing `ln y` on `ln x`.
///
/// The returned [`LinearFit::slope`] is the scaling exponent; the
/// intercept is `ln C`. Returns `None` under the same conditions as
/// [`fit_linear`], or if any value is non-positive (logarithms must
/// exist).
///
/// # Example
///
/// ```
/// use nonsearch_analysis::fit_log_log;
///
/// // y = 2·x^0.5
/// let x = [100.0f64, 400.0, 1600.0, 6400.0];
/// let y: Vec<f64> = x.iter().map(|v| 2.0 * v.sqrt()).collect();
/// let fit = fit_log_log(&x, &y).unwrap();
/// assert!((fit.slope - 0.5).abs() < 1e-9);
/// ```
pub fn fit_log_log(x: &[f64], y: &[f64]) -> Option<LinearFit> {
    if x.iter().chain(y.iter()).any(|&v| v <= 0.0) {
        return None;
    }
    let lx: Vec<f64> = x.iter().map(|v| v.ln()).collect();
    let ly: Vec<f64> = y.iter().map(|v| v.ln()).collect();
    fit_linear(&lx, &ly)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v - 1.0).collect();
        let fit = fit_linear(&x, &y).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept + 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(5.0) - 14.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_fit_has_lower_r2() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let y = [1.2, 1.9, 3.3, 3.6, 5.4, 5.8];
        let fit = fit_linear(&x, &y).unwrap();
        assert!(fit.r_squared > 0.9 && fit.r_squared < 1.0);
        assert!((fit.slope - 1.0).abs() < 0.2);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(fit_linear(&[1.0], &[2.0]).is_none());
        assert!(fit_linear(&[1.0, 2.0], &[1.0]).is_none());
        assert!(fit_linear(&[2.0, 2.0], &[1.0, 3.0]).is_none());
        assert!(fit_linear(&[1.0, f64::NAN], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn constant_response_is_perfect_flat_fit() {
        let fit = fit_linear(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn log_log_recovers_power_exponent() {
        let x = [10.0, 100.0, 1000.0, 10_000.0];
        let y: Vec<f64> = x.iter().map(|v: &f64| 0.7 * v.powf(1.5)).collect();
        let fit = fit_log_log(&x, &y).unwrap();
        assert!((fit.slope - 1.5).abs() < 1e-9);
        assert!((fit.intercept.exp() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn log_log_rejects_non_positive() {
        assert!(fit_log_log(&[1.0, -2.0], &[1.0, 2.0]).is_none());
        assert!(fit_log_log(&[1.0, 2.0], &[0.0, 2.0]).is_none());
    }

    #[test]
    fn display_mentions_slope() {
        let fit = fit_linear(&[1.0, 2.0], &[1.0, 2.0]).unwrap();
        assert!(fit.to_string().contains("slope=1.0000"));
    }
}
