//! E3 — Theorem 2: every Cooper–Frieze model with `0 < α < 1` needs
//! `Ω(n^{1/2})` weak-model requests to find vertex `n`.
//!
//! Sweeps `α × n`, races the searcher suite through the engine and fits
//! each algorithm's scaling exponent — the Cooper–Frieze counterpart of
//! `theorem1-weak`, with the same record taxonomy (`cell` rows per
//! algorithm point; `profile`/`metrics`/`resource` rows per size cell
//! under `--profile`).

use super::{open_corpus, print_banner, resolve_source};
use nonsearch_core::{certify_with_source, CertifyConfig, CooperFriezeModel, GraphModel};
use nonsearch_engine::{ExpContext, ExperimentSpec, JsonValue};
use nonsearch_search::{SearcherKind, SuccessCriterion};

pub(super) const SPEC: ExperimentSpec = ExperimentSpec {
    name: "theorem2-cf",
    id: "E3",
    claim: "all Cooper–Frieze models with 0 < α < 1 require Ω(n^0.5) requests",
    default_seed: 0xE3,
    run,
};

fn run(ctx: &mut ExpContext) {
    print_banner(
        ctx,
        "E3 / Theorem 2 (Cooper–Frieze, weak model)",
        "all Cooper–Frieze models with 0 < α < 1 require Ω(n^0.5) requests; \
         measured best exponents should sit at or above ~0.5",
    );

    let sizes = ctx.options.sweep(&[512, 1024, 2048, 4096, 8192]);
    let trial_count = ctx.options.trial_count(10);
    let alphas = if ctx.options.quick {
        vec![0.6]
    } else {
        vec![0.5, 0.8]
    };
    let corpus = open_corpus(ctx);

    for &alpha in &alphas {
        let model = CooperFriezeModel::balanced(alpha);
        let config = CertifyConfig {
            sizes: sizes.clone(),
            trials: trial_count,
            seed: ctx.seed,
            searchers: SearcherKind::informed().to_vec(),
            criterion: SuccessCriterion::DiscoverTarget,
            budget_multiplier: 30,
            threads: ctx.options.threads,
            tracer: ctx.tracer.clone(),
        };
        let source = resolve_source(corpus.as_ref(), &model, &sizes);
        let report = certify_with_source(model.name(), &*source, &config);
        println!("{report}");

        for algorithm in &report.algorithms {
            let exponent = algorithm.exponent();
            for pt in &algorithm.points {
                ctx.writer
                    .record_cell(vec![
                        ("model", JsonValue::from("cooper-frieze")),
                        ("alpha", JsonValue::from(alpha)),
                        ("searcher", JsonValue::from(algorithm.kind.name())),
                        ("n", JsonValue::from(pt.n)),
                        ("trials", JsonValue::from(trial_count)),
                        ("seed", JsonValue::from(ctx.seed)),
                        ("mean", JsonValue::from(pt.mean_requests)),
                        ("ci95", JsonValue::from(pt.ci95)),
                        ("success", JsonValue::from(pt.success_rate)),
                        ("exponent", JsonValue::from(exponent)),
                    ])
                    .expect("write cell record");
            }
        }

        if ctx.options.profile {
            for profile in &report.profiles {
                ctx.writer
                    .record_profile(vec![
                        ("model", JsonValue::from("cooper-frieze")),
                        ("alpha", JsonValue::from(alpha)),
                        ("n", JsonValue::from(profile.n)),
                        ("trials", JsonValue::from(profile.trials)),
                        ("lanes", JsonValue::from(profile.lanes)),
                        ("requests", JsonValue::from(profile.requests)),
                        ("wall_ms", JsonValue::from(profile.wall_ms)),
                        (
                            "requests_per_sec",
                            JsonValue::from(profile.requests_per_sec),
                        ),
                    ])
                    .expect("write profile record");
                ctx.writer
                    .record_metrics(
                        vec![
                            ("model", JsonValue::from("cooper-frieze")),
                            ("alpha", JsonValue::from(alpha)),
                            ("n", JsonValue::from(profile.n)),
                        ],
                        &profile.metrics,
                    )
                    .expect("write metrics record");
                ctx.writer
                    .record_resource(
                        vec![
                            ("model", JsonValue::from("cooper-frieze")),
                            ("alpha", JsonValue::from(alpha)),
                            ("n", JsonValue::from(profile.n)),
                        ],
                        profile.wall_ms as u64,
                        profile.workers,
                        &profile.phases,
                        profile.allocations,
                        &profile.resource,
                    )
                    .expect("write resource record");
            }
        }

        if let Some(expo) = report.best_exponent() {
            println!("fitted exponent of best algorithm: {expo:.3} (theory: ≥ 0.5)\n");
        }
    }
}
