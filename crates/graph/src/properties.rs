//! Cheap structural predicates and a one-stop structural summary.

use crate::{connected_components, is_connected, DegreeStats, NodeId, UndirectedCsr};
use std::collections::HashSet;
use std::fmt;

/// Structural predicates on an undirected graph.
///
/// Implemented for [`UndirectedCsr`]; exists as a trait so higher layers
/// can accept any graph view that knows its own shape.
pub trait GraphProperties {
    /// `true` if connected with exactly `n − 1` edges (and no self-loops).
    fn is_tree(&self) -> bool;
    /// Number of self-loop edges.
    fn self_loop_count(&self) -> usize;
    /// Number of edges in excess of the first edge between each vertex
    /// pair (self-loops excluded from the pairing).
    fn parallel_edge_count(&self) -> usize;
    /// `2m / (n(n−1))` for `n ≥ 2`, otherwise `0.0`.
    fn density(&self) -> f64;
}

impl GraphProperties for UndirectedCsr {
    fn is_tree(&self) -> bool {
        let n = self.node_count();
        n > 0 && self.edge_count() == n - 1 && self.self_loop_count() == 0 && is_connected(self)
    }

    fn self_loop_count(&self) -> usize {
        self.edges().filter(|&(_, (u, v))| u == v).count()
    }

    fn parallel_edge_count(&self) -> usize {
        let mut seen: HashSet<(NodeId, NodeId)> = HashSet::new();
        let mut extra = 0usize;
        for (_, (u, v)) in self.edges() {
            if u == v {
                continue;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            if !seen.insert(key) {
                extra += 1;
            }
        }
        extra
    }

    fn density(&self) -> f64 {
        let n = self.node_count();
        if n < 2 {
            return 0.0;
        }
        2.0 * self.edge_count() as f64 / (n as f64 * (n as f64 - 1.0))
    }
}

/// A one-stop structural summary of a graph, convenient for experiment
/// logs and doc examples.
#[derive(Debug, Clone, PartialEq)]
pub struct StructuralSummary {
    /// Number of vertices.
    pub nodes: usize,
    /// Number of undirected edges.
    pub edges: usize,
    /// Number of connected components.
    pub components: usize,
    /// Size of the largest component.
    pub giant: usize,
    /// Number of self-loops.
    pub self_loops: usize,
    /// Number of parallel duplicate edges.
    pub parallels: usize,
    /// Degree statistics, if the graph is non-empty.
    pub degrees: Option<DegreeStats>,
}

impl StructuralSummary {
    /// Computes the summary for `graph`.
    pub fn of(graph: &UndirectedCsr) -> StructuralSummary {
        let cc = connected_components(graph);
        StructuralSummary {
            nodes: graph.node_count(),
            edges: graph.edge_count(),
            components: cc.count(),
            giant: cc.giant_size(),
            self_loops: graph.self_loop_count(),
            parallels: graph.parallel_edge_count(),
            degrees: DegreeStats::of(graph),
        }
    }
}

impl fmt::Display for StructuralSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} m={} components={} giant={} loops={} parallels={}",
            self.nodes, self.edges, self.components, self.giant, self.self_loops, self.parallels
        )?;
        if let Some(d) = &self.degrees {
            write!(f, " deg[min={} max={} mean={:.3}]", d.min, d.max, d.mean)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UndirectedCsr;

    #[test]
    fn path_is_tree() {
        let g = UndirectedCsr::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!(g.is_tree());
    }

    #[test]
    fn cycle_is_not_tree() {
        let g = UndirectedCsr::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        assert!(!g.is_tree());
    }

    #[test]
    fn disconnected_forest_is_not_tree() {
        let g = UndirectedCsr::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(!g.is_tree()); // right edge count minus one? n-1=3, edges=2
    }

    #[test]
    fn loop_breaks_tree() {
        let g = UndirectedCsr::from_edges(2, [(0, 1), (1, 1)]).unwrap();
        assert!(!g.is_tree());
        assert_eq!(g.self_loop_count(), 1);
    }

    #[test]
    fn parallel_edges_counted() {
        let g = UndirectedCsr::from_edges(3, [(0, 1), (1, 0), (1, 2), (2, 1), (2, 1)]).unwrap();
        assert_eq!(g.parallel_edge_count(), 3);
    }

    #[test]
    fn density_of_complete_graph_is_one() {
        let edges = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let g = UndirectedCsr::from_edges(4, edges).unwrap();
        assert!((g.density() - 1.0).abs() < 1e-12);
        let empty = UndirectedCsr::from_edges(1, []).unwrap();
        assert_eq!(empty.density(), 0.0);
    }

    #[test]
    fn summary_display_nonempty() {
        let g = UndirectedCsr::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let s = StructuralSummary::of(&g);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.components, 1);
        let text = s.to_string();
        assert!(text.contains("n=3"));
        assert!(text.contains("deg["));
    }
}
