//! Deliberate violation: epoch-wrap logic outside stamped.rs.

pub struct Cursor {
    epoch: u32,
}

impl Cursor {
    pub fn reset(&mut self) {
        if self.epoch == u32::MAX {
            self.epoch = 0;
        }
        self.epoch += 1;
    }
}
