//! Graph substrate for the `nonsearch` project.
//!
//! This crate provides the two graph representations every other crate in
//! the workspace builds on:
//!
//! * [`EvolvingDigraph`] — an append-only directed **multigraph** (self-loops
//!   and parallel edges allowed). Evolving scale-free models (Móri,
//!   Cooper–Frieze, Barabási–Albert, …) are naturally described as oriented
//!   graphs where each edge points from a newer vertex to an older one; the
//!   paper's merged Móri graph `G_t^{(m)}` additionally requires multi-edges
//!   and loops, which is why a multigraph is the base type.
//! * [`UndirectedCsr`] — a static, cache-friendly undirected incidence view
//!   (compressed sparse row). *Searching always takes place in the
//!   corresponding unoriented graph* (paper, §1), so every search oracle and
//!   every analysis routine consumes this view.
//!
//! # Example
//!
//! ```
//! use nonsearch_graph::{EvolvingDigraph, UndirectedCsr};
//!
//! // Build the 4-vertex star 2→1, 3→1, 4→1 as an evolving digraph.
//! let mut g = EvolvingDigraph::new();
//! let center = g.add_node();
//! for _ in 0..3 {
//!     let leaf = g.add_node();
//!     g.add_edge(leaf, center).unwrap();
//! }
//! assert_eq!(g.node_count(), 4);
//! assert_eq!(g.in_degree(center), 3);
//!
//! // Search and analysis operate on the unoriented view.
//! let view = UndirectedCsr::from_digraph(&g);
//! assert_eq!(view.degree(center), 3);
//! assert!(view.neighbors(center).count() == 3);
//! ```

// `unsafe` is denied crate-wide and allowed only in `storage`, which
// implements the validated zero-copy casts behind borrowed CSR views
// (memory-mapped `.nsg` corpus files).
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod csr;
mod degree;
mod digraph;
mod error;
mod node;
mod properties;
mod serialize;
mod storage;
mod traversal;

pub use builder::{complete_graph, cycle_graph, path_graph, star_graph, GraphBuilder};
pub use csr::{IncidentEdges, Neighbors, RawCsrParts, UndirectedCsr};
pub use degree::{degree_histogram, degree_sequence, DegreeStats};
pub use digraph::{EdgeEndpoints, EvolvingDigraph};
pub use error::GraphError;
pub use node::{EdgeId, NodeId};
pub use properties::{GraphProperties, StructuralSummary};
pub use serialize::{read_edge_list, write_edge_list, GraphRecord};
pub use storage::{zero_copy_support, AlignedBytes, CsrBytes, CsrLayout, RawSlotPair};
pub use traversal::{
    bfs_distances, bfs_order, connected_components, is_connected, Bfs, ComponentLabels,
};

/// Result alias used across this crate.
pub type Result<T> = std::result::Result<T, GraphError>;
