//! The `.nsg` binary graph format: a little-endian serialization of the
//! exact CSR buffers of an [`UndirectedCsr`].
//!
//! Layout (all integers little-endian):
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 4    | magic `b"NSG1"` |
//! | 4      | 2    | format version (`1`) |
//! | 6      | 2    | flags (reserved, `0`) |
//! | 8      | 8    | vertex count `n` (u64) |
//! | 16     | 8    | edge count `m` (u64) |
//! | 24     | 8    | FNV-1a 64 checksum of the payload |
//! | 32     | —    | payload |
//!
//! Payload: `offsets` as `(n+1) × u64`, then `slots` as
//! `2m × (u32 neighbor, u32 edge id)`, then `edge_list` as
//! `m × (u32, u32)`. Storing all three buffers (rather than just the
//! edge list) is what makes the reader *zero-copy-style*: decoding is a
//! straight bulk conversion into
//! [`UndirectedCsr::from_raw_parts`] with no CSR re-derivation, so the
//! exact incidence-slot order — including the slot shuffle baked in at
//! generation time — survives the round trip bit for bit.

use crate::error::CorpusError;
use nonsearch_graph::{EdgeId, NodeId, UndirectedCsr};
use std::path::Path;

/// File magic: "NonSearch Graph", format generation 1.
pub const MAGIC: [u8; 4] = *b"NSG1";
/// Current format version.
pub const VERSION: u16 = 1;
/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 32;

/// FNV-1a 64-bit hash — the checksum used by both the `.nsg` header
/// (over the payload) and the corpus manifest (over whole files).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Serializes `graph` into `.nsg` bytes.
///
/// # Errors
///
/// Returns [`CorpusError::Format`] if the graph exceeds the format's
/// `u32` id range (more than `u32::MAX` vertices or edges).
pub fn encode_graph(graph: &UndirectedCsr) -> Result<Vec<u8>, CorpusError> {
    let (offsets, slots, edge_list) = graph.raw_parts();
    let n = graph.node_count();
    let m = graph.edge_count();
    if n > u32::MAX as usize || m > u32::MAX as usize {
        return Err(CorpusError::format(format!(
            "graph with {n} vertices / {m} edges exceeds the u32 id range"
        )));
    }

    let payload_len = 8 * offsets.len() + 8 * slots.len() + 8 * edge_list.len();
    let mut payload = Vec::with_capacity(payload_len);
    for &o in offsets {
        payload.extend_from_slice(&(o as u64).to_le_bytes());
    }
    for &(v, e) in slots {
        payload.extend_from_slice(&(v.index() as u32).to_le_bytes());
        payload.extend_from_slice(&(e.index() as u32).to_le_bytes());
    }
    for &(u, v) in edge_list {
        payload.extend_from_slice(&(u.index() as u32).to_le_bytes());
        payload.extend_from_slice(&(v.index() as u32).to_le_bytes());
    }

    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&VERSION.to_le_bytes());
    bytes.extend_from_slice(&0u16.to_le_bytes()); // flags
    bytes.extend_from_slice(&(n as u64).to_le_bytes());
    bytes.extend_from_slice(&(m as u64).to_le_bytes());
    bytes.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);
    Ok(bytes)
}

/// Deserializes `.nsg` bytes back into a graph, validating the header,
/// the payload checksum, and (via
/// [`UndirectedCsr::from_raw_parts`]) the structural consistency of the
/// CSR buffers.
///
/// # Errors
///
/// Returns [`CorpusError::Format`] on any violation.
pub fn decode_graph(bytes: &[u8]) -> Result<UndirectedCsr, CorpusError> {
    if bytes.len() < HEADER_LEN {
        return Err(CorpusError::format(format!(
            "{} bytes is shorter than the {HEADER_LEN}-byte header",
            bytes.len()
        )));
    }
    if bytes[0..4] != MAGIC {
        return Err(CorpusError::format("bad magic (not an .nsg file)"));
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if version != VERSION {
        return Err(CorpusError::format(format!(
            "unsupported format version {version} (reader speaks {VERSION})"
        )));
    }
    let read_u64 = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
    let n64 = read_u64(8);
    let m64 = read_u64(16);
    let stored_checksum = read_u64(24);

    // Checked arithmetic: a corrupt header with absurd counts must fail
    // cleanly here, not overflow or attempt a huge allocation below.
    let expected_len = n64
        .checked_add(1)
        .and_then(|x| x.checked_mul(8))
        .and_then(|x| x.checked_add(m64.checked_mul(24)?))
        .and_then(|x| x.checked_add(HEADER_LEN as u64));
    if expected_len != Some(bytes.len() as u64) {
        return Err(CorpusError::format(format!(
            "file is {} bytes but the header claims n={n64}, m={m64}",
            bytes.len()
        )));
    }
    // The length equality bounds both counts far below usize::MAX.
    let (n, m) = (n64 as usize, m64 as usize);
    let payload = &bytes[HEADER_LEN..];
    let actual_checksum = fnv1a64(payload);
    if actual_checksum != stored_checksum {
        return Err(CorpusError::format(format!(
            "payload checksum mismatch (header {stored_checksum:016x}, payload {actual_checksum:016x})"
        )));
    }

    let mut at = 0usize;
    let mut next_u64 = || {
        let v = u64::from_le_bytes(payload[at..at + 8].try_into().expect("8 bytes"));
        at += 8;
        v
    };
    let offsets: Vec<usize> = (0..=n).map(|_| next_u64() as usize).collect();
    let mut next_u32_pair = || {
        let a = u32::from_le_bytes(payload[at..at + 4].try_into().expect("4 bytes"));
        let b = u32::from_le_bytes(payload[at + 4..at + 8].try_into().expect("4 bytes"));
        at += 8;
        (a as usize, b as usize)
    };
    let slots: Vec<(NodeId, EdgeId)> = (0..2 * m)
        .map(|_| {
            let (v, e) = next_u32_pair();
            (NodeId::new(v), EdgeId::new(e))
        })
        .collect();
    let edge_list: Vec<(NodeId, NodeId)> = (0..m)
        .map(|_| {
            let (u, v) = next_u32_pair();
            (NodeId::new(u), NodeId::new(v))
        })
        .collect();

    UndirectedCsr::from_raw_parts(offsets, slots, edge_list)
        .map_err(|e| CorpusError::format(e.to_string()))
}

/// Encodes `graph` and writes it to `path`, returning the FNV-1a 64
/// checksum of the whole file (the value recorded in the manifest).
///
/// # Errors
///
/// Returns [`CorpusError::Format`] for unencodable graphs and
/// [`CorpusError::Io`] for filesystem failures.
pub fn write_graph_file(path: &Path, graph: &UndirectedCsr) -> Result<u64, CorpusError> {
    let bytes = encode_graph(graph)?;
    std::fs::write(path, &bytes).map_err(|e| CorpusError::io(path, e))?;
    Ok(fnv1a64(&bytes))
}

/// Reads and decodes the `.nsg` file at `path`.
///
/// # Errors
///
/// Returns [`CorpusError::Io`] for filesystem failures and
/// [`CorpusError::Format`] for malformed content.
pub fn read_graph_file(path: &Path) -> Result<UndirectedCsr, CorpusError> {
    let bytes = std::fs::read(path).map_err(|e| CorpusError::io(path, e))?;
    decode_graph(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonsearch_generators::{rng_from_seed, BarabasiAlbert};

    fn sample() -> UndirectedCsr {
        let mut g = BarabasiAlbert::sample(80, 2, &mut rng_from_seed(1))
            .unwrap()
            .undirected();
        g.shuffle_slots(&mut rng_from_seed(2));
        g
    }

    #[test]
    fn roundtrip_preserves_graph_exactly() {
        let g = sample();
        let bytes = encode_graph(&g).unwrap();
        let back = decode_graph(&bytes).unwrap();
        assert_eq!(g, back); // slot shuffle included
    }

    #[test]
    fn roundtrip_edge_cases() {
        for g in [
            UndirectedCsr::from_edges(0, []).unwrap(),
            UndirectedCsr::from_edges(1, []).unwrap(),
            UndirectedCsr::from_edges(1, [(0, 0)]).unwrap(), // self-loop
            UndirectedCsr::from_edges(2, [(0, 1), (0, 1)]).unwrap(), // parallel
        ] {
            let bytes = encode_graph(&g).unwrap();
            assert_eq!(decode_graph(&bytes).unwrap(), g);
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let g = sample();
        assert_eq!(encode_graph(&g).unwrap(), encode_graph(&g).unwrap());
    }

    #[test]
    fn header_fields_are_laid_out_as_documented() {
        let g = UndirectedCsr::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let bytes = encode_graph(&g).unwrap();
        assert_eq!(&bytes[0..4], b"NSG1");
        assert_eq!(u16::from_le_bytes(bytes[4..6].try_into().unwrap()), 1);
        assert_eq!(u64::from_le_bytes(bytes[8..16].try_into().unwrap()), 3);
        assert_eq!(u64::from_le_bytes(bytes[16..24].try_into().unwrap()), 2);
        assert_eq!(bytes.len(), HEADER_LEN + 8 * 4 + 16 * 2 + 8 * 2);
    }

    #[test]
    fn corruption_is_detected() {
        let g = sample();
        let bytes = encode_graph(&g).unwrap();

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(decode_graph(&bad_magic).is_err());

        let mut bad_version = bytes.clone();
        bad_version[4] = 9;
        assert!(decode_graph(&bad_version).is_err());

        let mut flipped_payload = bytes.clone();
        let last = flipped_payload.len() - 1;
        flipped_payload[last] ^= 0xFF;
        assert!(decode_graph(&flipped_payload).is_err());

        let truncated = &bytes[..bytes.len() - 8];
        assert!(decode_graph(truncated).is_err());

        assert!(decode_graph(&bytes[..10]).is_err());

        // Absurd header counts must error cleanly, not overflow or
        // attempt a huge allocation.
        let mut huge_n = bytes.clone();
        huge_n[8..16].copy_from_slice(&(1u64 << 61).to_le_bytes());
        assert!(decode_graph(&huge_n).is_err());
        let mut huge_m = bytes;
        huge_m[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_graph(&huge_m).is_err());
    }

    #[test]
    fn file_roundtrip_and_checksum() {
        let dir = std::env::temp_dir().join(format!("nsg_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.nsg");
        let g = sample();
        let checksum = write_graph_file(&path, &g).unwrap();
        assert_eq!(checksum, fnv1a64(&std::fs::read(&path).unwrap()));
        assert_eq!(read_graph_file(&path).unwrap(), g);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_F739_67E8);
    }
}
