//! Property-based tests for the lint scanner: total on arbitrary
//! input, and literal/comment masking that never leaks tokens into the
//! code view.

use nonsearch_lint::{has_token, scan_source};
use proptest::prelude::*;

/// The adversarial alphabet: every character that drives the lexer's
/// state machine, plus ordinary identifier characters. `\r` is
/// excluded so `str::lines` and the scanner agree on line counts.
const ALPHABET: &[char] = &[
    '"', '\'', '\\', '/', '*', '#', 'r', 'b', '{', '}', '\n', ' ', 'a', 'z', '_', '0', '!', ':',
    '(', ')', 'é',
];

fn text_from(indices: &[usize]) -> String {
    indices
        .iter()
        .map(|&i| ALPHABET[i % ALPHABET.len()])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The scanner is total: no panic, no truncation, one scanned line
    /// per source line, and the masked code of a line is never longer
    /// than the line itself.
    #[test]
    fn scanner_never_panics_and_keeps_line_structure(
        indices in proptest::collection::vec(0usize..1000, 0..400),
    ) {
        let source = text_from(&indices);
        let file = scan_source(&source);
        prop_assert_eq!(file.lines.len(), source.lines().count());
        for (line, raw) in file.lines.iter().zip(source.lines()) {
            prop_assert!(
                line.code.chars().count() <= raw.chars().count(),
                "masked code longer than source line {raw:?}"
            );
        }
    }

    /// A sentinel token placed inside a plain string literal never
    /// reaches the code view, while the same token as real code always
    /// does — for arbitrary surrounding junk on the line.
    #[test]
    fn string_literals_are_skipped(
        prefix in proptest::collection::vec(0usize..1000, 0..20),
        suffix in proptest::collection::vec(0usize..1000, 0..20),
    ) {
        // Junk stays on one line and cannot open a literal or comment
        // that would swallow the quoted sentinel.
        let sanitize = |raw: String| -> String {
            raw.chars()
                .map(|c| match c {
                    '"' | '\'' | '\\' | '/' | '*' | '\n' | '#' | 'r' | 'b' => '_',
                    other => other,
                })
                .collect::<String>()
        };
        let pre = sanitize(text_from(&prefix));
        let post = sanitize(text_from(&suffix));
        let quoted = format!("{pre}\"sentinel_token\"{post}\n");
        let file = scan_source(&quoted);
        prop_assert_eq!(file.lines.len(), 1);
        prop_assert!(!has_token(&file.lines[0].code, "sentinel_token"));
        prop_assert!(file.lines[0].strings.contains(&"sentinel_token".to_string()));
        let bare = format!("{pre} sentinel_token {post}\n");
        let file = scan_source(&bare);
        prop_assert!(has_token(&file.lines[0].code, "sentinel_token"));
    }

    /// Raw strings mask their contents for every hash depth, including
    /// contents full of quotes and lesser hash runs.
    #[test]
    fn raw_strings_are_skipped_at_any_hash_depth(
        depth in 1usize..6,
        inner in proptest::collection::vec(0usize..1000, 0..30),
    ) {
        let hashes = "#".repeat(depth);
        // Strip closers of this depth (or deeper) from the body so the
        // literal ends exactly where we close it.
        let body: String = text_from(&inner)
            .replace('\n', " ")
            .replace('"', "'")
            .replace('#', if depth == 1 { " " } else { "#" });
        let body = body.replace(&format!("'{hashes}"), "  ");
        let source = format!("let x = r{hashes}\"{body}sentinel_token\"{hashes}; real_code\n");
        let file = scan_source(&source);
        prop_assert_eq!(file.lines.len(), 1);
        prop_assert!(!has_token(&file.lines[0].code, "sentinel_token"), "{:?}", file.lines[0]);
        prop_assert!(has_token(&file.lines[0].code, "real_code"));
    }

    /// Block comments nest to arbitrary depth; the code view resumes
    /// exactly after the matching closer.
    #[test]
    fn nested_block_comments_are_skipped(
        depth in 1usize..8,
        inner in proptest::collection::vec(0usize..1000, 0..30),
    ) {
        // Neutralize openers/closers inside the filler.
        let filler: String = text_from(&inner)
            .replace('\n', " ")
            .replace('*', "x")
            .replace('/', "y");
        let open = "/*".repeat(depth);
        let close = "*/".repeat(depth);
        let source = format!("before {open}{filler} hidden_token {close} after\n");
        let file = scan_source(&source);
        prop_assert_eq!(file.lines.len(), 1);
        let code = &file.lines[0].code;
        prop_assert!(has_token(code, "before"));
        prop_assert!(has_token(code, "after"), "{code:?}");
        prop_assert!(!has_token(code, "hidden_token"));
        prop_assert!(file.lines[0].comment.contains("hidden_token"));
    }
}
