//! Local-knowledge search: the paper's weak and strong oracle models and a
//! suite of distributed search algorithms.
//!
//! # The models (paper, §1, "Modeling the searching process")
//!
//! In both models the searching process holds *"a list of already
//! discovered vertices (initially reduced to a single vertex), each with
//! its degree and a list of incident edges"*, and pays one unit per
//! request:
//!
//! * **Weak model** ([`WeakSearchState`]) — a request is a pair `(u, e)`
//!   with `u` discovered and `e` an edge incident to `u`; the answer is
//!   the identity `v` of the other endpoint together with `v`'s incident
//!   edge list.
//! * **Strong model** ([`StrongSearchState`]) — a request names a vertex
//!   `u` of known identity; the answer lists the vertices adjacent to `u`
//!   together with their respective incident edge lists.
//!
//! The measure of performance is *the number of requests made prior to
//! stopping*; the runner adjudicates success externally, so lower-bound
//! experiments never depend on an algorithm noticing its own success.
//!
//! Algorithms implement [`WeakSearcher`] or [`StrongSearcher`];
//! [`SimulatedStrong`] replays a strong algorithm in the weak model at a
//! per-request slowdown bounded by the maximum degree — the exact
//! simulation the paper uses to transfer Theorem 1 to the strong model.
//!
//! # Example
//!
//! ```
//! use nonsearch_generators::{rng_from_seed, MoriTree};
//! use nonsearch_graph::NodeId;
//! use nonsearch_search::{run_weak, BfsFlood, SearchTask};
//!
//! let mut rng = rng_from_seed(5);
//! let tree = MoriTree::sample(64, 0.5, &mut rng)?;
//! let graph = tree.undirected();
//! let task = SearchTask::new(NodeId::from_label(1), NodeId::from_label(64));
//! let outcome = run_weak(&graph, &task, &mut BfsFlood::new(), &mut rng)?;
//! assert!(outcome.found);
//! // BFS discovers everything with at most one request per edge slot.
//! assert!(outcome.requests <= 2 * graph.edge_count());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithms;
mod discovered;
mod error;
mod frontier;
mod runner;
mod scratch;
mod simulate;
mod stamped;
mod strong;
mod suite;
mod task;
mod weak;

pub use algorithms::{
    greedy_route, percolation_search, percolation_search_in, AvoidingWalk, BfsFlood, DfsWalk,
    GreedyIdProximity, GreedyRouteOutcome, HighDegreeGreedy, LookaheadWalk, OldestFirst,
    PercolationConfig, PercolationOutcome, PercolationScratch, RandomWalk, RestartingWalk,
    StrongBfs, StrongGreedyId, StrongHighDegree,
};
pub use discovered::{DiscoveredVertex, DiscoveredView, UnexploredEdges};
pub use error::SearchError;
pub use frontier::FrontierCursors;
pub use runner::{run_strong, run_strong_in, run_weak, run_weak_in};
pub use scratch::{SearchScratch, StampedNodeSet};
pub use simulate::SimulatedStrong;
pub use stamped::StampedMap;
pub use strong::{StrongSearchState, StrongSearcher};
pub use suite::SearcherKind;
pub use task::{SearchOutcome, SearchTask, SuccessCriterion};
pub use weak::{WeakSearchState, WeakSearcher};

/// Result alias used across this crate.
pub type Result<T> = std::result::Result<T, SearchError>;
