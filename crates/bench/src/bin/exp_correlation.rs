//! E14 — neighbor-degree dependence: evolving vs pure random graphs.
//!
//! The paper's structural argument for why mean-field analyses fail on
//! evolving models: *"the degree and age of a vertex are positively
//! correlated. In particular, the degrees of neighbors are not
//! independent"* — unlike the Molloy–Reed configuration model. This
//! experiment measures age–degree correlation, degree assortativity and
//! the `k_nn(d)` curve across both families.

use nonsearch_analysis::{
    age_degree_correlation, degree_assortativity, mean_neighbor_degree_curve, SampleStats, Table,
};
use nonsearch_bench::{banner, quick, trials};
use nonsearch_core::{
    BarabasiAlbertModel, CooperFriezeModel, GraphModel, MergedMoriModel, PowerLawGiantModel,
    UniformAttachmentModel,
};
use nonsearch_generators::SeedSequence;

fn main() {
    banner(
        "E14 / neighbor-degree dependence",
        "evolving models: age–degree correlation and degree–degree \
         dependence; configuration model: neighbor degrees independent",
    );

    let n = if quick() { 10_000 } else { 50_000 };
    let trial_count = trials(6);
    let seeds = SeedSequence::new(0xE14);

    let models: Vec<(&str, Box<dyn GraphModel>)> = vec![
        (
            "mori(p=0.6,m=2)",
            Box::new(MergedMoriModel { p: 0.6, m: 2 }),
        ),
        (
            "cooper-frieze(α=0.7)",
            Box::new(CooperFriezeModel::balanced(0.7)),
        ),
        (
            "barabasi-albert(m=2)",
            Box::new(BarabasiAlbertModel { m: 2 }),
        ),
        (
            "uniform-attach(m=2)",
            Box::new(UniformAttachmentModel { m: 2 }),
        ),
        (
            "config-model(k=2.5)",
            Box::new(PowerLawGiantModel {
                exponent: 2.5,
                d_min: 1,
            }),
        ),
    ];

    let mut table =
        Table::with_columns(&["model", "age-degree r", "assortativity", "k_nn(1)/k_nn(8)"]);
    for (mi, (name, model)) in models.iter().enumerate() {
        let mut age_r = Vec::new();
        let mut assort = Vec::new();
        let mut knn_ratio = Vec::new();
        for t in 0..trial_count {
            let mut rng = seeds.subsequence(mi as u64).child_rng(t as u64);
            let graph = model.sample_graph(n, &mut rng);
            if let Some(r) = age_degree_correlation(&graph) {
                age_r.push(r);
            }
            if let Some(r) = degree_assortativity(&graph) {
                assort.push(r);
            }
            let curve = mean_neighbor_degree_curve(&graph);
            if let (Some(Some(k1)), Some(Some(k8))) = (curve.get(1), curve.get(8)) {
                knn_ratio.push(k1 / k8);
            }
        }
        let fmt = |xs: &[f64]| match SampleStats::from_slice(xs) {
            Some(s) => format!("{:+.3} ±{:.3}", s.mean(), s.ci95_half_width()),
            None => "-".into(),
        };
        table.row(vec![
            name.to_string(),
            fmt(&age_r),
            fmt(&assort),
            fmt(&knn_ratio),
        ]);
    }
    println!("{table}");
    println!("reading the table:");
    println!("  age-degree r  — strongly negative for attachment models (old ⇒");
    println!("                  high degree; note config-model relabels ids so ~0)");
    println!("  assortativity — negative (disassortative) for evolving models");
    println!("  k_nn ratio    — > 1 when low-degree vertices sit next to hubs;");
    println!("                  ≈ 1 when neighbor degrees are independent");
    println!("this dependence is exactly why the paper replaces mean-field");
    println!("arguments with the conditional-equivalence technique.");
}
