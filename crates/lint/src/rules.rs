//! The six workspace contracts, as machine-checked rules.
//!
//! Every rule reads source through [`crate::scan`], so comments and
//! string literals never trigger findings. Findings are
//! [`Diagnostic`]s; an inline waiver
//! `// lint: allow(<rule>): <reason>` on the flagged line (or on a
//! comment line directly above it) downgrades the finding to *waived*,
//! which `xp lint` reports but does not fail on. A waiver without a
//! reason is itself a finding (`waiver-syntax`) and cannot be waived.
//!
//! | rule | contract |
//! |------|----------|
//! | `epoch-wrap` | `u32::MAX` epoch comparisons live only in `crates/search/src/stamped.rs` |
//! | `unsafe-confinement` | `unsafe` only in `graph/src/storage.rs` + `corpus/src/mmap.rs`; every crate root declares `forbid`/`deny(unsafe_code)` |
//! | `determinism` | no `HashMap`/`HashSet` in non-test engine/search/core/corpus code without a waiver |
//! | `clock-env` | `Instant::now`/`SystemTime`/`env::var` only in the obs/profile/CliOptions seams |
//! | `alloc-free` | no allocating calls inside functions annotated `// lint: alloc-free` |
//! | `record-schema` | every `*_TYPE` record tag in `record.rs` has an `xp validate` arm in `registry.rs` |

use crate::scan::{find_token, has_token, scan, ScannedFile};
use std::collections::BTreeMap;

/// Where the epoch-wrap comparison is allowed to live.
pub const EPOCH_HOME: &str = "crates/search/src/stamped.rs";
/// The two modules blessed to contain `unsafe` code.
pub const UNSAFE_HOMES: [&str; 3] = [
    "crates/graph/src/storage.rs",
    "crates/corpus/src/mmap.rs",
    "crates/alloc_counter/src/lib.rs",
];
/// Files blessed to read clocks or the environment directly.
pub const CLOCK_BLESSED_FILES: [&str; 2] = [
    "crates/engine/src/options.rs",
    "crates/engine/src/record.rs",
];
/// Directory prefix blessed for clock access (the observability crate).
pub const CLOCK_BLESSED_DIR: &str = "crates/obs/src/";
/// Crates whose non-test code must not use hash-ordered collections.
pub const DETERMINISM_CRATES: [&str; 4] = [
    "crates/engine/src/",
    "crates/search/src/",
    "crates/core/src/",
    "crates/corpus/src/",
];
/// Where the `*_TYPE` record tags are defined.
pub const RECORD_FILE: &str = "crates/engine/src/record.rs";
/// Where `xp validate` must dispatch on each tag.
pub const VALIDATE_FILE: &str = "crates/engine/src/registry.rs";

/// Calls that allocate, banned inside `// lint: alloc-free` functions.
const ALLOC_TOKENS: [&str; 12] = [
    "Vec::new",
    "VecDeque::new",
    "String::new",
    "Box::new",
    "HashMap::new",
    "HashSet::new",
    "BTreeMap::new",
    "vec!",
    "format!",
    "to_string",
    "to_owned",
    "collect",
];

/// Clock and environment reads that must stay behind the obs seam.
const CLOCK_TOKENS: [&str; 4] = ["Instant::now", "SystemTime", "env::var", "env::var_os"];

/// A rule's identity and the contract it enforces, for `xp lint --rules`.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable rule id, used in diagnostics and waivers.
    pub id: &'static str,
    /// One-line statement of the contract.
    pub contract: &'static str,
}

/// The six shipped rules, in reporting order.
pub const RULES: [RuleInfo; 6] = [
    RuleInfo {
        id: "epoch-wrap",
        contract: "u32::MAX epoch comparisons only in crates/search/src/stamped.rs",
    },
    RuleInfo {
        id: "unsafe-confinement",
        contract: "unsafe only in graph/storage.rs, corpus/mmap.rs, alloc_counter; \
                   crate roots declare forbid/deny(unsafe_code)",
    },
    RuleInfo {
        id: "determinism",
        contract: "no HashMap/HashSet in non-test engine/search/core/corpus code",
    },
    RuleInfo {
        id: "clock-env",
        contract: "Instant::now/SystemTime/env::var only in obs, options.rs, record.rs",
    },
    RuleInfo {
        id: "alloc-free",
        contract: "no allocating calls inside `// lint: alloc-free` functions",
    },
    RuleInfo {
        id: "record-schema",
        contract: "every *_TYPE tag in record.rs has an xp validate arm in registry.rs",
    },
];

/// One finding: a rule, a place, and whether a waiver covers it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (one of [`RULES`], or `waiver-syntax`).
    pub rule: String,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line number (file-scope findings use line 1).
    pub line: usize,
    /// Human-readable description of the finding.
    pub message: String,
    /// The waiver reason when an inline waiver covers this finding.
    pub waived: Option<String>,
}

/// The outcome of linting a file set.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Number of files scanned.
    pub files: usize,
    /// All findings, waived and not, sorted by (path, line, rule).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Findings covered by an inline waiver.
    pub fn waived(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.waived.is_some())
            .count()
    }

    /// Unwaived findings — the count `xp lint` fails on.
    pub fn violations(&self) -> usize {
        self.diagnostics.len() - self.waived()
    }
}

/// Waivers extracted from one file's comments.
#[derive(Debug, Default)]
struct FileWaivers {
    /// 0-based line → (rule, reason) waivers effective on that line.
    by_line: BTreeMap<usize, Vec<(String, String)>>,
    /// Every (rule, reason) waiver in the file, for file-scope findings.
    anywhere: Vec<(String, String)>,
    /// 0-based lines of functions annotated `// lint: alloc-free`.
    alloc_free_fns: Vec<usize>,
    /// Malformed `lint:` comments (0-based line, message).
    malformed: Vec<(usize, String)>,
}

/// Lints an in-memory file set: path (repo-relative, forward slashes)
/// → source text. This is the pure core `lint_tree` and the unit tests
/// share.
pub fn lint_files(files: &BTreeMap<String, String>) -> LintReport {
    let scanned: BTreeMap<&str, ScannedFile> = files
        .iter()
        .map(|(path, text)| (path.as_str(), scan(text)))
        .collect();
    let mut diags: Vec<Diagnostic> = Vec::new();
    for (&path, file) in &scanned {
        let waivers = extract_waivers(file);
        for &(line, ref message) in &waivers.malformed {
            diags.push(Diagnostic {
                rule: "waiver-syntax".into(),
                path: path.into(),
                line: line + 1,
                message: message.clone(),
                waived: None,
            });
        }
        let mut found = Vec::new();
        check_epoch_wrap(path, file, &mut found);
        check_unsafe(path, file, &mut found);
        check_determinism(path, file, &mut found);
        check_clock_env(path, file, &mut found);
        check_alloc_free(path, file, &waivers, &mut found);
        apply_waivers(&waivers, &mut found);
        diags.extend(found);
    }
    let mut schema = Vec::new();
    check_record_schema(&scanned, &mut schema);
    if let Some(file) = scanned.get(RECORD_FILE) {
        let waivers = extract_waivers(file);
        apply_waivers(&waivers, &mut schema);
    }
    diags.extend(schema);
    diags.sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    LintReport {
        files: files.len(),
        diagnostics: diags,
    }
}

/// Parses `lint:` comments into waivers, alloc-free markers, and
/// malformed-waiver findings, attaching each to the line it governs
/// (its own line, or the next line carrying code when the comment
/// stands alone).
fn extract_waivers(file: &ScannedFile) -> FileWaivers {
    let mut out = FileWaivers::default();
    for (lineno, line) in file.lines.iter().enumerate() {
        // Only comments that *start* with the marker are directives;
        // prose mentioning the syntax (like this crate's docs) is not.
        let Some(directive) = line.comment.trim_start().strip_prefix("lint:") else {
            continue;
        };
        let directive = directive.trim();
        let effective = if line.code.trim().is_empty() {
            // Standalone comment: governs the next line with code.
            file.lines
                .iter()
                .enumerate()
                .skip(lineno + 1)
                .find(|(_, l)| !l.code.trim().is_empty())
                .map(|(j, _)| j)
                .unwrap_or(lineno)
        } else {
            lineno
        };
        if directive == "alloc-free" {
            out.alloc_free_fns.push(effective);
            continue;
        }
        match parse_allow(directive) {
            Ok((rule, reason)) => {
                out.by_line
                    .entry(effective)
                    .or_default()
                    .push((rule.clone(), reason.clone()));
                out.anywhere.push((rule, reason));
            }
            Err(message) => out.malformed.push((lineno, message)),
        }
    }
    out
}

/// Parses `allow(<rule>): <reason>` after the `lint:` marker.
fn parse_allow(directive: &str) -> Result<(String, String), String> {
    let rest = directive.strip_prefix("allow(").ok_or_else(|| {
        format!("malformed lint directive {directive:?}: expected `allow(<rule>): <reason>` or `alloc-free`")
    })?;
    let close = rest
        .find(')')
        .ok_or_else(|| format!("malformed waiver {directive:?}: missing `)`"))?;
    let rule = rest[..close].trim();
    if rule.is_empty() {
        return Err(format!("malformed waiver {directive:?}: empty rule id"));
    }
    let after = rest[close + 1..].trim_start();
    let reason = after.strip_prefix(':').map(str::trim).unwrap_or_default();
    if reason.is_empty() {
        return Err(format!(
            "waiver for {rule:?} has no reason: write `lint: allow({rule}): <why>`"
        ));
    }
    Ok((rule.to_string(), reason.to_string()))
}

/// Marks findings covered by a waiver for their rule on their line, or
/// (for file-scope findings at line 1 with no code match) anywhere in
/// the file.
fn apply_waivers(waivers: &FileWaivers, found: &mut [Diagnostic]) {
    for d in found.iter_mut() {
        let on_line = waivers
            .by_line
            .get(&(d.line - 1))
            .into_iter()
            .flatten()
            .find(|(rule, _)| *rule == d.rule);
        let file_scope = d
            .message
            .contains("crate root")
            .then(|| waivers.anywhere.iter().find(|(rule, _)| *rule == d.rule))
            .flatten();
        if let Some((_, reason)) = on_line.or(file_scope) {
            d.waived = Some(reason.clone());
        }
    }
}

/// Is this path inside a test/bench/example tree (skipped by the
/// code-hygiene rules, which govern shipped code only)?
fn is_test_path(path: &str) -> bool {
    path.split('/')
        .any(|part| matches!(part, "tests" | "benches" | "examples"))
}

/// Rule 1: epoch-wrap confinement.
fn check_epoch_wrap(path: &str, file: &ScannedFile, out: &mut Vec<Diagnostic>) {
    if path == EPOCH_HOME || is_test_path(path) {
        return;
    }
    for (lineno, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if has_token(&line.code, "u32::MAX") && line.code.contains("epoch") {
            out.push(Diagnostic {
                rule: "epoch-wrap".into(),
                path: path.into(),
                line: lineno + 1,
                message: format!(
                    "epoch-wrap comparison outside {EPOCH_HOME}: the u32::MAX wrap \
                     must stay confined to StampedMap::reset"
                ),
                waived: None,
            });
        }
    }
}

/// Rule 2: unsafe confinement — no `unsafe` tokens outside the blessed
/// modules, and every crate root declares `forbid`/`deny(unsafe_code)`.
fn check_unsafe(path: &str, file: &ScannedFile, out: &mut Vec<Diagnostic>) {
    if !UNSAFE_HOMES.contains(&path) {
        for (lineno, line) in file.lines.iter().enumerate() {
            if has_token(&line.code, "unsafe") {
                out.push(Diagnostic {
                    rule: "unsafe-confinement".into(),
                    path: path.into(),
                    line: lineno + 1,
                    message: format!(
                        "`unsafe` outside the blessed modules ({})",
                        UNSAFE_HOMES.join(", ")
                    ),
                    waived: None,
                });
            }
        }
    }
    let is_crate_root =
        path == "src/lib.rs" || (path.starts_with("crates/") && path.ends_with("/src/lib.rs"));
    if is_crate_root {
        let declared = file.lines.iter().any(|line| {
            line.code.contains("forbid(unsafe_code)") || line.code.contains("deny(unsafe_code)")
        });
        if !declared {
            out.push(Diagnostic {
                rule: "unsafe-confinement".into(),
                path: path.into(),
                line: 1,
                message: "crate root declares neither #![forbid(unsafe_code)] nor \
                          #![deny(unsafe_code)]"
                    .into(),
                waived: None,
            });
        }
    }
}

/// Rule 3: determinism hazards — hash-ordered collections in the
/// aggregate-bearing crates need a waiver explaining why iteration
/// order cannot reach a result.
fn check_determinism(path: &str, file: &ScannedFile, out: &mut Vec<Diagnostic>) {
    if is_test_path(path) || !DETERMINISM_CRATES.iter().any(|c| path.starts_with(c)) {
        return;
    }
    for (lineno, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for token in ["HashMap", "HashSet"] {
            if has_token(&line.code, token) {
                out.push(Diagnostic {
                    rule: "determinism".into(),
                    path: path.into(),
                    line: lineno + 1,
                    message: format!(
                        "{token} in deterministic-aggregate code: iteration order is \
                         randomized per process; use BTreeMap/BTreeSet or waive with \
                         a proof that order never reaches an aggregate"
                    ),
                    waived: None,
                });
            }
        }
    }
}

/// Rule 4: clock/env hygiene — wall clocks and environment reads stay
/// behind the obs/profile/CliOptions seams.
fn check_clock_env(path: &str, file: &ScannedFile, out: &mut Vec<Diagnostic>) {
    if is_test_path(path)
        || path.starts_with(CLOCK_BLESSED_DIR)
        || CLOCK_BLESSED_FILES.contains(&path)
    {
        return;
    }
    for (lineno, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for token in CLOCK_TOKENS {
            if has_token(&line.code, token) {
                out.push(Diagnostic {
                    rule: "clock-env".into(),
                    path: path.into(),
                    line: lineno + 1,
                    message: format!(
                        "{token} outside the obs/profile seam: clocks and environment \
                         reads are nondeterministic inputs"
                    ),
                    waived: None,
                });
            }
        }
    }
}

/// Rule 5: alloc-free regions — functions annotated
/// `// lint: alloc-free` must not contain allocating calls.
fn check_alloc_free(
    path: &str,
    file: &ScannedFile,
    waivers: &FileWaivers,
    out: &mut Vec<Diagnostic>,
) {
    for &fn_line in &waivers.alloc_free_fns {
        let Some(line) = file.lines.get(fn_line) else {
            continue;
        };
        if !has_token(&line.code, "fn") {
            out.push(Diagnostic {
                rule: "alloc-free".into(),
                path: path.into(),
                line: fn_line + 1,
                message: "`lint: alloc-free` marker is not followed by a function".into(),
                waived: None,
            });
            continue;
        }
        // Brace-match the function body on the masked code. The
        // signature line is scanned too, so one-line bodies count.
        let mut depth = 0i64;
        let mut opened = false;
        for (j, body_line) in file.lines.iter().enumerate().skip(fn_line) {
            for token in ALLOC_TOKENS {
                if has_token(&body_line.code, token) {
                    out.push(Diagnostic {
                        rule: "alloc-free".into(),
                        path: path.into(),
                        line: j + 1,
                        message: format!(
                            "{token} inside alloc-free function (annotated on line {})",
                            fn_line + 1
                        ),
                        waived: None,
                    });
                }
            }
            for c in body_line.code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
        }
    }
}

/// Rule 6: record-schema consistency — every `*_TYPE` tag constant in
/// `record.rs` must be dispatched on (compared with `==`) by the
/// validator in `registry.rs`.
fn check_record_schema(scanned: &BTreeMap<&str, ScannedFile>, out: &mut Vec<Diagnostic>) {
    let (Some(record), Some(registry)) = (scanned.get(RECORD_FILE), scanned.get(VALIDATE_FILE))
    else {
        return;
    };
    for (lineno, line) in record.lines.iter().enumerate() {
        if line.in_test || !has_token(&line.code, "const") || !line.code.contains("&str") {
            continue;
        }
        let Some(name) = type_const_name(&line.code) else {
            continue;
        };
        let dispatched = registry
            .lines
            .iter()
            .any(|l| !l.in_test && l.code.contains("==") && has_token(&l.code, &name));
        if !dispatched {
            out.push(Diagnostic {
                rule: "record-schema".into(),
                path: RECORD_FILE.into(),
                line: lineno + 1,
                message: format!(
                    "record tag {name} has no `xp validate` arm in {VALIDATE_FILE}: \
                     every emitted record type must be validatable"
                ),
                waived: None,
            });
        }
    }
}

/// Extracts the `NAME_TYPE` identifier from a `const NAME_TYPE: &str`
/// declaration line.
fn type_const_name(code: &str) -> Option<String> {
    let start = find_token(code, "const")? + "const".len();
    let rest = code[start..].trim_start();
    let ident: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    (ident.ends_with("_TYPE") && ident.len() > "_TYPE".len()).then_some(ident)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(path: &str, text: &str) -> LintReport {
        let mut files = BTreeMap::new();
        files.insert(path.to_string(), text.to_string());
        lint_files(&files)
    }

    fn rules_of(report: &LintReport) -> Vec<&str> {
        report.diagnostics.iter().map(|d| d.rule.as_str()).collect()
    }

    // --- rule 1: epoch-wrap ------------------------------------------------

    #[test]
    fn epoch_wrap_flags_strays_and_respects_home() {
        let bad = "fn reset(&mut self) { if self.epoch == u32::MAX { self.wrap(); } }\n";
        let report = lint_one("crates/search/src/frontier.rs", bad);
        assert_eq!(rules_of(&report), vec!["epoch-wrap"]);
        assert_eq!(report.violations(), 1);
        // The same line in its home file is the contract, not a breach.
        assert_eq!(lint_one(EPOCH_HOME, bad).violations(), 0);
        // A u32::MAX with no epoch nearby is unrelated saturation math.
        let clean = "let cap = u32::MAX as usize;\n";
        assert_eq!(
            lint_one("crates/search/src/frontier.rs", clean).violations(),
            0
        );
    }

    #[test]
    fn epoch_wrap_waiver_downgrades() {
        let waived = "// lint: allow(epoch-wrap): mirrors stamped.rs for a doc example\n\
                      if self.epoch == u32::MAX { wrap(); }\n";
        let report = lint_one("crates/search/src/other.rs", waived);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.violations(), 0);
        assert!(report.diagnostics[0].waived.is_some());
    }

    // --- rule 2: unsafe-confinement ----------------------------------------

    #[test]
    fn unsafe_flags_outside_blessed_modules() {
        let bad = "pub fn peek(p: *const u8) -> u8 { unsafe { *p } }\n";
        let report = lint_one("crates/search/src/fast.rs", bad);
        assert_eq!(rules_of(&report), vec!["unsafe-confinement"]);
        assert_eq!(lint_one("crates/graph/src/storage.rs", bad).violations(), 0);
        // `unsafe_code` in an attribute is not the `unsafe` keyword.
        let attr = "#![forbid(unsafe_code)]\n";
        assert_eq!(lint_one("crates/search/src/fast.rs", attr).violations(), 0);
    }

    #[test]
    fn crate_roots_must_declare_an_unsafe_stance() {
        let bare = "pub fn f() {}\n";
        let report = lint_one("crates/search/src/lib.rs", bare);
        assert_eq!(rules_of(&report), vec!["unsafe-confinement"]);
        assert_eq!(report.diagnostics[0].line, 1);
        assert_eq!(
            lint_one(
                "crates/search/src/lib.rs",
                "#![deny(unsafe_code)]\npub fn f() {}\n"
            )
            .violations(),
            0
        );
        // Non-root files carry no such obligation.
        assert_eq!(lint_one("crates/search/src/other.rs", bare).violations(), 0);
        // A file-scope waiver anywhere in the file covers the root finding.
        let waived = "// lint: allow(unsafe-confinement): this crate IS the unsafe allocator\n\
                      pub fn f() {}\n";
        assert_eq!(lint_one("crates/search/src/lib.rs", waived).violations(), 0);
    }

    // --- rule 3: determinism -----------------------------------------------

    #[test]
    fn determinism_flags_hash_collections_in_engine_crates() {
        let bad = "use std::collections::HashMap;\n";
        let report = lint_one("crates/core/src/thing.rs", bad);
        assert_eq!(rules_of(&report), vec!["determinism"]);
        // Outside the aggregate-bearing crates the rule is silent.
        assert_eq!(lint_one("crates/analysis/src/fit.rs", bad).violations(), 0);
        // Test modules may hash freely.
        let in_test = "#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n";
        assert_eq!(
            lint_one("crates/core/src/thing.rs", in_test).violations(),
            0
        );
        // Doc comments mentioning HashMap are prose, not hazards.
        let doc = "/// Unlike a HashMap, iteration order here is sorted.\nstruct S;\n";
        assert_eq!(lint_one("crates/core/src/thing.rs", doc).violations(), 0);
    }

    #[test]
    fn determinism_waiver_downgrades() {
        let waived = "use std::collections::HashMap; // lint: allow(determinism): keyed \
                      lookup only, never iterated\n";
        let report = lint_one("crates/corpus/src/store.rs", waived);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.violations(), 0);
    }

    // --- rule 4: clock-env -------------------------------------------------

    #[test]
    fn clock_env_flags_raw_clocks_outside_the_seam() {
        let bad = "let t0 = std::time::Instant::now();\n";
        let report = lint_one("crates/search/src/walker.rs", bad);
        assert_eq!(rules_of(&report), vec!["clock-env"]);
        // The obs crate and the profile/record seams are blessed.
        assert_eq!(lint_one("crates/obs/src/timer.rs", bad).violations(), 0);
        assert_eq!(lint_one("crates/engine/src/record.rs", bad).violations(), 0);
        // Bench and test trees measure time legitimately.
        assert_eq!(lint_one("crates/bench/benches/b.rs", bad).violations(), 0);
        // env::var_os is caught, not just env::var.
        let env = "let home = std::env::var_os(\"HOME\");\n";
        assert_eq!(
            rules_of(&lint_one("crates/core/src/x.rs", env)),
            vec!["clock-env"]
        );
    }

    #[test]
    fn clock_env_waiver_downgrades() {
        let waived = "// lint: allow(clock-env): profile timing, reported not aggregated\n\
                      let t0 = std::time::Instant::now();\n";
        let report = lint_one("crates/bench/src/bench_suite.rs", waived);
        assert_eq!(report.violations(), 0);
        assert_eq!(report.diagnostics.len(), 1);
    }

    // --- rule 5: alloc-free ------------------------------------------------

    #[test]
    fn alloc_free_flags_allocations_in_annotated_fns() {
        let bad = "// lint: alloc-free\n\
                   pub fn reset(&mut self) {\n\
                       let spill = Vec::new();\n\
                       self.used += format!(\"{spill:?}\").len();\n\
                   }\n\
                   pub fn other(&self) -> Vec<u8> { vec![0] }\n";
        let report = lint_one("crates/search/src/hot.rs", bad);
        assert_eq!(rules_of(&report), vec!["alloc-free", "alloc-free"]);
        // The unannotated neighbour allocates freely.
        assert!(report.diagnostics.iter().all(|d| d.line <= 5));
    }

    #[test]
    fn alloc_free_clean_fn_passes_and_bad_marker_is_flagged() {
        let clean = "// lint: alloc-free\n\
                     pub fn advance(&mut self) -> usize {\n\
                         self.cursor += 1;\n\
                         self.cursor\n\
                     }\n";
        assert_eq!(lint_one("crates/search/src/hot.rs", clean).violations(), 0);
        let dangling = "// lint: alloc-free\nstatic X: usize = 3;\n";
        let report = lint_one("crates/search/src/hot.rs", dangling);
        assert_eq!(rules_of(&report), vec!["alloc-free"]);
        assert!(report.diagnostics[0].message.contains("not followed"));
    }

    // --- rule 6: record-schema ---------------------------------------------

    fn schema_files(record: &str, registry: &str) -> BTreeMap<String, String> {
        let mut files = BTreeMap::new();
        files.insert(RECORD_FILE.to_string(), record.to_string());
        files.insert(VALIDATE_FILE.to_string(), registry.to_string());
        files
    }

    #[test]
    fn record_schema_requires_a_validate_arm_per_tag() {
        let record = "pub const CELL_TYPE: &str = \"cell\";\n\
                      pub const ROGUE_TYPE: &str = \"rogue\";\n";
        let registry = "fn validate(t: &str) { if t == CELL_TYPE { checked(); } }\n";
        let report = lint_files(&schema_files(record, registry));
        assert_eq!(rules_of(&report), vec!["record-schema"]);
        assert_eq!(report.diagnostics[0].line, 2);
        assert!(report.diagnostics[0].message.contains("ROGUE_TYPE"));
        // With both arms present the rule is satisfied.
        let full = "fn validate(t: &str) { if t == CELL_TYPE || t == ROGUE_TYPE {} }\n";
        assert_eq!(lint_files(&schema_files(record, full)).violations(), 0);
        // A bare import of the const is not a dispatch.
        let import_only =
            "use crate::record::{CELL_TYPE, ROGUE_TYPE};\nfn validate(t: &str) { if t == CELL_TYPE {} }\n";
        assert_eq!(
            rules_of(&lint_files(&schema_files(record, import_only))),
            vec!["record-schema"]
        );
    }

    // --- waiver syntax -----------------------------------------------------

    #[test]
    fn malformed_waivers_are_unwaivable_findings() {
        for bad in [
            "// lint: allow(determinism)\nuse std::collections::HashMap;\n",
            "// lint: allow(): because\nlet x = 1;\n",
            "// lint: allow determinism: because\nlet x = 1;\n",
        ] {
            let report = lint_one("crates/core/src/x.rs", bad);
            assert!(
                rules_of(&report).contains(&"waiver-syntax"),
                "expected waiver-syntax in {:?}",
                rules_of(&report)
            );
            assert!(report.violations() >= 1, "{bad}");
        }
    }

    #[test]
    fn waiver_for_the_wrong_rule_does_not_cover() {
        let wrong = "use std::collections::HashMap; // lint: allow(clock-env): oops\n";
        let report = lint_one("crates/core/src/x.rs", wrong);
        assert_eq!(report.violations(), 1);
        assert_eq!(
            report
                .diagnostics
                .iter()
                .filter(|d| d.rule == "determinism")
                .count(),
            1
        );
    }

    #[test]
    fn string_literals_never_trip_rules() {
        let tricky = "let s = \"use std::collections::HashMap; unsafe { epoch == u32::MAX } \
                      Instant::now()\";\n";
        assert_eq!(lint_one("crates/core/src/x.rs", tricky).violations(), 0);
    }
}
