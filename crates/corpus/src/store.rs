//! Opening a corpus and serving its graphs as engine [`GraphSource`]s.
//!
//! [`Corpus::open`] parses the manifest and indexes graphs by requested
//! size; [`Corpus::source`] (originals) and [`Corpus::variant_source`]
//! (rewired null models) hand out [`CorpusSource`]s that assign trials
//! to stored graphs **round-robin** (`trial % stored_trials`). Loaded
//! graphs are cached behind an `Arc`, so concurrent trials on any
//! number of engine workers share one in-memory copy per file.

use crate::error::CorpusError;
use crate::manifest::Manifest;
use crate::nsg;
use nonsearch_engine::GraphSource;
use nonsearch_generators::SeedSequence;
use nonsearch_graph::UndirectedCsr;
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

struct Inner {
    dir: PathBuf,
    manifest: Manifest,
    /// Requested size → indices into `manifest.graphs`, trial order.
    by_n: BTreeMap<usize, Vec<usize>>,
    /// Relative file → decoded graph, filled on first access.
    cache: Mutex<HashMap<String, Arc<UndirectedCsr>>>,
}

/// An opened corpus directory.
#[derive(Clone)]
pub struct Corpus {
    inner: Arc<Inner>,
}

/// What [`Corpus::verify`] checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyReport {
    /// Files whose checksum and structure were validated.
    pub files: usize,
    /// Total bytes read.
    pub bytes: u64,
}

impl Corpus {
    /// Opens the corpus at `dir` by reading its manifest.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError`] if the manifest is missing or malformed.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Corpus, CorpusError> {
        let dir = dir.into();
        let manifest = Manifest::read_from(&dir)?;
        let mut by_n: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, g) in manifest.graphs.iter().enumerate() {
            by_n.entry(g.n).or_default().push(i);
        }
        for indices in by_n.values_mut() {
            indices.sort_by_key(|&i| manifest.graphs[i].trial);
        }
        Ok(Corpus {
            inner: Arc::new(Inner {
                dir,
                manifest,
                by_n,
                cache: Mutex::new(HashMap::new()),
            }),
        })
    }

    /// The parsed manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.inner.manifest
    }

    /// The corpus directory.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// `true` if the corpus stores graphs for requested size `n`.
    pub fn supports_size(&self, n: usize) -> bool {
        self.inner.by_n.contains_key(&n)
    }

    /// Checks that this corpus can back an experiment sweeping `model`
    /// over `sizes`.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::Unsupported`] naming the first mismatch
    /// (wrong model, or a size the corpus does not store).
    pub fn check_compatible(&self, model: &str, sizes: &[usize]) -> Result<(), CorpusError> {
        if self.inner.manifest.model != model {
            return Err(CorpusError::Unsupported {
                reason: format!(
                    "corpus stores {:?}, experiment sweeps {model:?} \
                     (rebuild with --model or drop --corpus)",
                    self.inner.manifest.model
                ),
            });
        }
        if let Some(&n) = sizes.iter().find(|n| !self.supports_size(**n)) {
            return Err(CorpusError::Unsupported {
                reason: format!(
                    "size {n} is not in the corpus (stored sizes: {:?})",
                    self.inner.by_n.keys().collect::<Vec<_>>()
                ),
            });
        }
        Ok(())
    }

    /// Loads (and caches) one stored graph: the original of entry
    /// `graph_idx`, or — with `variant = Some(v)` — its `v`-th rewired
    /// null model.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError`] for unknown indices, I/O failures, or
    /// corrupt files.
    pub fn load(
        &self,
        graph_idx: usize,
        variant: Option<usize>,
    ) -> Result<Arc<UndirectedCsr>, CorpusError> {
        let entry =
            self.inner
                .manifest
                .graphs
                .get(graph_idx)
                .ok_or_else(|| CorpusError::Unsupported {
                    reason: format!(
                        "graph index {graph_idx} out of range ({} stored)",
                        self.inner.manifest.graphs.len()
                    ),
                })?;
        let file = match variant {
            None => &entry.file,
            Some(v) => {
                &entry
                    .variants
                    .get(v)
                    .ok_or_else(|| CorpusError::Unsupported {
                        reason: format!(
                            "variant {v} of {} not stored ({} variants)",
                            entry.file,
                            entry.variants.len()
                        ),
                    })?
                    .file
            }
        };
        if let Some(g) = self.inner.cache.lock().expect("cache lock").get(file) {
            return Ok(Arc::clone(g));
        }
        let graph = Arc::new(nsg::read_graph_file(&self.inner.dir.join(file))?);
        self.inner
            .cache
            .lock()
            .expect("cache lock")
            .insert(file.clone(), Arc::clone(&graph));
        Ok(graph)
    }

    /// A [`GraphSource`] serving the stored originals.
    pub fn source(&self) -> CorpusSource {
        CorpusSource {
            inner: Arc::clone(&self.inner),
            variant: None,
        }
    }

    /// A [`GraphSource`] serving rewired variant `v` of every graph.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::Unsupported`] if the corpus stores fewer
    /// than `v + 1` variants per graph.
    pub fn variant_source(&self, v: usize) -> Result<CorpusSource, CorpusError> {
        if v >= self.inner.manifest.variants {
            return Err(CorpusError::Unsupported {
                reason: format!(
                    "variant {v} not stored (corpus has {} per graph)",
                    self.inner.manifest.variants
                ),
            });
        }
        Ok(CorpusSource {
            inner: Arc::clone(&self.inner),
            variant: Some(v),
        })
    }

    /// Re-reads every stored file, checking manifest checksums, header
    /// checksums, CSR structural consistency, and the manifest's
    /// node/edge counts.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn verify(&self) -> Result<VerifyReport, CorpusError> {
        let mut report = VerifyReport { files: 0, bytes: 0 };
        for entry in &self.inner.manifest.graphs {
            let checks = std::iter::once((&entry.file, entry.checksum))
                .chain(entry.variants.iter().map(|v| (&v.file, v.checksum)));
            for (file, expected) in checks {
                let path = self.inner.dir.join(file);
                let bytes = std::fs::read(&path).map_err(|e| CorpusError::io(&path, e))?;
                let actual = nsg::fnv1a64(&bytes);
                if actual != expected {
                    return Err(CorpusError::Checksum {
                        path,
                        expected,
                        actual,
                    });
                }
                let graph = nsg::decode_graph(&bytes)?;
                if graph.node_count() != entry.nodes || graph.edge_count() != entry.edges {
                    return Err(CorpusError::format(format!(
                        "{file}: graph is {}v/{}e but the manifest says {}v/{}e",
                        graph.node_count(),
                        graph.edge_count(),
                        entry.nodes,
                        entry.edges
                    )));
                }
                report.files += 1;
                report.bytes += bytes.len() as u64;
            }
        }
        Ok(report)
    }
}

/// A corpus-backed [`GraphSource`]: trial `t` at size `n` is served the
/// stored graph `t % stored_trials` of that size.
#[derive(Clone)]
pub struct CorpusSource {
    inner: Arc<Inner>,
    variant: Option<usize>,
}

impl GraphSource for CorpusSource {
    /// # Panics
    ///
    /// Panics if the corpus stores no graphs for `n` or a stored file is
    /// unreadable — experiments validate compatibility up front via
    /// [`Corpus::check_compatible`], so this only fires on corpora
    /// modified mid-run.
    fn trial_graph(&self, n: usize, trial: usize, _seeds: &SeedSequence) -> Arc<UndirectedCsr> {
        let corpus = Corpus {
            inner: Arc::clone(&self.inner),
        };
        let indices = self.inner.by_n.get(&n).unwrap_or_else(|| {
            panic!(
                "corpus {} stores no graphs of size {n}",
                self.inner.dir.display()
            )
        });
        let graph_idx = indices[trial % indices.len()];
        corpus
            .load(graph_idx, self.variant)
            .unwrap_or_else(|e| panic!("corpus {}: {e}", self.inner.dir.display()))
    }

    fn describe(&self) -> String {
        match self.variant {
            None => format!("corpus:{}", self.inner.dir.display()),
            Some(v) => format!("corpus:{}#v{v}", self.inner.dir.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build, BuildSpec};

    fn built_corpus(tag: &str) -> (PathBuf, Corpus) {
        let dir = std::env::temp_dir().join(format!("corpus_store_{}_{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let spec = BuildSpec {
            model_spec: "mori:p=0.6,m=1".into(),
            seed: 11,
            sizes: vec![32, 64],
            trials: 2,
            variants: 1,
            swaps_per_edge: 4,
            threads: 1,
        };
        build(&dir, &spec).unwrap();
        let corpus = Corpus::open(&dir).unwrap();
        (dir, corpus)
    }

    #[test]
    fn open_indexes_sizes_and_serves_round_robin() {
        let (dir, corpus) = built_corpus("roundrobin");
        assert!(corpus.supports_size(32));
        assert!(corpus.supports_size(64));
        assert!(!corpus.supports_size(128));

        let source = corpus.source();
        let seeds = SeedSequence::new(0);
        let t0 = source.trial_graph(32, 0, &seeds);
        let t1 = source.trial_graph(32, 1, &seeds);
        let t2 = source.trial_graph(32, 2, &seeds); // wraps to trial 0
        assert_ne!(t0, t1);
        assert_eq!(t0, t2);
        assert!(Arc::ptr_eq(&t0, &t2), "cache shares one instance");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn variant_source_serves_rewired_graphs() {
        let (dir, corpus) = built_corpus("variants");
        let seeds = SeedSequence::new(0);
        let original = corpus.source().trial_graph(64, 0, &seeds);
        let null = corpus.variant_source(0).unwrap().trial_graph(64, 0, &seeds);
        assert_eq!(
            nonsearch_graph::degree_sequence(&original),
            nonsearch_graph::degree_sequence(&null)
        );
        assert!(corpus.variant_source(1).is_err());
        assert!(corpus.source().describe().starts_with("corpus:"));
        assert!(corpus.variant_source(0).unwrap().describe().contains("#v0"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compatibility_checks_name_the_mismatch() {
        let (dir, corpus) = built_corpus("compat");
        assert!(corpus
            .check_compatible("mori(p=0.6,m=1)", &[32, 64])
            .is_ok());
        let err = corpus
            .check_compatible("mori(p=0.2,m=1)", &[32])
            .unwrap_err();
        assert!(err.to_string().contains("p=0.2"));
        let err = corpus
            .check_compatible("mori(p=0.6,m=1)", &[32, 999])
            .unwrap_err();
        assert!(err.to_string().contains("999"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_passes_then_catches_tampering() {
        let (dir, corpus) = built_corpus("verify");
        let report = corpus.verify().unwrap();
        assert_eq!(report.files, corpus.manifest().file_count());
        assert!(report.bytes > 0);

        // Flip one payload byte of one stored file.
        let victim = dir.join(&corpus.manifest().graphs[0].file);
        let mut bytes = std::fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&victim, &bytes).unwrap();
        let fresh = Corpus::open(&dir).unwrap();
        assert!(fresh.verify().is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_is_a_clean_error() {
        let dir = std::env::temp_dir().join(format!("corpus_none_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        assert!(Corpus::open(&dir).is_err());
    }
}
