//! Verification of probabilistic vertex equivalence (Definition 2 /
//! Lemma 2).
//!
//! Two complementary checks:
//!
//! * [`exact_window_exchangeability`] — enumerate every Móri tree of a
//!   small size with its exact probability and verify that the
//!   conditional distribution given `E_{a,b}` is literally invariant
//!   under every window transposition. This is Lemma 2, machine-checked.
//! * [`sampled_window_symmetry`] — for sizes where enumeration is
//!   impossible, sample trees conditional on the event and compare
//!   per-position statistics of window vertices (father label mean,
//!   final indegree); exchangeability implies the positions are
//!   statistically indistinguishable.

use crate::enumerate::enumerate_mori_trees;
use crate::event::mori_window_event_holds;
use crate::theory::{check_probability, CoreError};
use crate::window::EquivalenceWindow;
use crate::Permutation;
use nonsearch_generators::{MoriTree, SeedSequence};
use nonsearch_graph::NodeId;
use std::collections::BTreeMap;
use std::fmt;

/// Result of the exact exchangeability check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExchangeabilityCheck {
    /// Probability mass of the conditioning event.
    pub event_mass: f64,
    /// Largest absolute discrepancy `|P(G ∧ E) − P(σ(G) ∧ E)|` over all
    /// outcomes `G` and window transpositions `σ`.
    pub max_discrepancy: f64,
    /// Number of (outcome, transposition) pairs compared.
    pub comparisons: usize,
}

impl ExchangeabilityCheck {
    /// `true` if the distribution is exchangeable up to `tol`.
    pub fn is_exchangeable(&self, tol: f64) -> bool {
        self.max_discrepancy <= tol
    }
}

impl fmt::Display for ExchangeabilityCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "event mass {:.6}, max discrepancy {:.3e} over {} comparisons",
            self.event_mass, self.max_discrepancy, self.comparisons
        )
    }
}

/// Exactly verifies Lemma 2 on trees of size `window.b()`: conditional
/// on `E_{a,b}`, the tree distribution is invariant under every
/// transposition of window vertices.
///
/// # Errors
///
/// Propagates [`CoreError::InvalidParameter`] from the enumerator
/// (`window.b() ≤ 12` required).
pub fn exact_window_exchangeability(
    window: &EquivalenceWindow,
    p: f64,
) -> crate::Result<ExchangeabilityCheck> {
    let n = window.minimum_tree_size();
    let dist = enumerate_mori_trees(n, p)?;
    let in_event = |fathers: &Vec<usize>| -> bool {
        ((window.a() + 1)..=window.b()).all(|k| fathers[k - 2] <= window.a())
    };
    // Index outcomes satisfying the event. A BTreeMap (not HashMap)
    // keeps the discrepancy fold below in sorted-key order, so the
    // reported maximum is reproducible bit for bit across runs.
    let mut event_prob: BTreeMap<Vec<usize>, f64> = BTreeMap::new();
    let mut event_mass = 0.0;
    for (fathers, prob) in dist.outcomes() {
        if in_event(fathers) {
            *event_prob.entry(fathers.clone()).or_insert(0.0) += *prob;
            event_mass += *prob;
        }
    }
    let members = window.members();
    let mut max_discrepancy: f64 = 0.0;
    let mut comparisons = 0usize;
    for i in 0..members.len() {
        for j in (i + 1)..members.len() {
            let sigma = Permutation::transposition(n, members[i], members[j]);
            for (fathers, prob) in &event_prob {
                let permuted = sigma.apply_to_fathers(fathers);
                let other = event_prob.get(&permuted).copied().unwrap_or(0.0);
                max_discrepancy = max_discrepancy.max((prob - other).abs());
                comparisons += 1;
            }
        }
    }
    Ok(ExchangeabilityCheck {
        event_mass,
        max_discrepancy,
        comparisons,
    })
}

/// Result of the sampled symmetry check.
#[derive(Debug, Clone, PartialEq)]
pub struct SymmetryReport {
    /// Conditioned sample size (trials on which the event held).
    pub accepted: usize,
    /// Total trials attempted.
    pub attempted: usize,
    /// Mean father label of each window position (index 0 = label `a+1`).
    pub father_means: Vec<f64>,
    /// Mean final indegree of each window position.
    pub indegree_means: Vec<f64>,
    /// Largest pairwise z-statistic between window positions' father
    /// means; exchangeability ⇒ asymptotically standard normal, so
    /// values ≲ 4 are consistent with symmetry.
    pub max_z: f64,
}

impl fmt::Display for SymmetryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accepted {}/{} conditioned samples, max |z| = {:.2}",
            self.accepted, self.attempted, self.max_z
        )
    }
}

/// Samples Móri trees of size `window.b()` conditional on `E_{a,b}`
/// (by rejection) and tests that window positions are statistically
/// interchangeable.
///
/// # Errors
///
/// * [`CoreError::InvalidParameter`] for bad `p` or zero `trials`.
/// * [`CoreError::NoAcceptedSamples`] if no trial satisfied the event.
pub fn sampled_window_symmetry(
    window: &EquivalenceWindow,
    p: f64,
    trials: usize,
    seed: u64,
) -> crate::Result<SymmetryReport> {
    check_probability("p", p)?;
    if trials == 0 {
        return Err(CoreError::invalid("trials", 0usize, "a positive count"));
    }
    let seeds = SeedSequence::new(seed);
    let size = window.minimum_tree_size();
    let w = window.len();
    let mut accepted = 0usize;
    let mut father_sum = vec![0.0f64; w];
    let mut father_sq = vec![0.0f64; w];
    let mut indeg_sum = vec![0.0f64; w];
    for t in 0..trials {
        let mut rng = seeds.child_rng(t as u64);
        let tree = MoriTree::sample(size, p, &mut rng).expect("window sizes are valid tree sizes");
        if !mori_window_event_holds(tree.trace(), window) {
            continue;
        }
        accepted += 1;
        for (slot, label) in ((window.a() + 1)..=window.b()).enumerate() {
            let father = tree.father_of_label(label).expect("covered").label() as f64;
            father_sum[slot] += father;
            father_sq[slot] += father * father;
            indeg_sum[slot] += tree.digraph().in_degree(NodeId::from_label(label)) as f64;
        }
    }
    if accepted == 0 {
        return Err(CoreError::NoAcceptedSamples { trials });
    }
    let nacc = accepted as f64;
    let father_means: Vec<f64> = father_sum.iter().map(|s| s / nacc).collect();
    let indegree_means: Vec<f64> = indeg_sum.iter().map(|s| s / nacc).collect();
    let variances: Vec<f64> = father_sq
        .iter()
        .zip(&father_means)
        .map(|(sq, m)| (sq / nacc - m * m).max(0.0))
        .collect();
    let mut max_z = 0.0f64;
    for i in 0..w {
        for j in (i + 1)..w {
            let se = ((variances[i] + variances[j]) / nacc).sqrt();
            if se > 0.0 {
                max_z = max_z.max((father_means[i] - father_means[j]).abs() / se);
            }
        }
    }
    Ok(SymmetryReport {
        accepted,
        attempted: trials,
        father_means,
        indegree_means,
        max_z,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma2_holds_exactly_on_small_trees() {
        for &p in &[0.0, 0.3, 0.5, 0.8, 1.0] {
            let window = EquivalenceWindow::with_bounds(4, 7);
            let check = exact_window_exchangeability(&window, p).unwrap();
            assert!(check.is_exchangeable(1e-12), "p = {p}: {check}");
            assert!(check.event_mass > 0.0);
            assert!(check.comparisons > 0);
        }
    }

    #[test]
    fn lemma2_also_holds_for_the_prescribed_window() {
        // The Lemma 3 window from anchor 6: [[7, 8]], trees of size 8.
        let window = EquivalenceWindow::from_anchor(6);
        let check = exact_window_exchangeability(&window, 0.6).unwrap();
        assert!(check.is_exchangeable(1e-12), "{check}");
    }

    #[test]
    fn unconditioned_distribution_is_not_exchangeable() {
        // Without conditioning, vertex 7 can father vertex 8 but not vice
        // versa, so the raw distribution must be asymmetric. We simulate
        // "no conditioning" with the trivial event (window anchored high
        // enough to allow all fathers — here force it by using a window
        // whose event is everything: a = b−1 ≥ everything possible? No:
        // instead verify that extending the event breaks symmetry).
        let p = 0.5;
        let dist = enumerate_mori_trees(8, p).unwrap();
        // Compare P(N_8 = 7) with P(N_7 = ... ) under a *swapped* vector:
        // pick the outcome where 8 → 7 and note its swap is infeasible.
        let mass_8_to_7 = dist.mass_where(|f| f[6] == 7);
        assert!(mass_8_to_7 > 0.0);
        // Any σ swapping 7 and 8 maps it to a vector with N_7 = 8 — which
        // has probability zero. Hence no exchangeability without E.
    }

    #[test]
    fn sampled_symmetry_for_moderate_windows() {
        let window = EquivalenceWindow::from_anchor(50); // [[51, 57]]
        let report = sampled_window_symmetry(&window, 0.4, 4000, 11).unwrap();
        assert!(report.accepted > 500, "acceptance too low: {report}");
        assert!(report.max_z < 4.0, "symmetry rejected: {report}");
        assert_eq!(report.father_means.len(), window.len());
    }

    #[test]
    fn no_accepted_samples_is_an_error() {
        // p = 0 with a huge window makes the event extremely unlikely;
        // with 1 trial the rejection sampler realistically fails.
        let window = EquivalenceWindow::with_bounds(2, 12);
        let err = sampled_window_symmetry(&window, 0.0, 1, 0);
        // Either an error or (improbably) a pass; accept both but check
        // the error variant is the documented one when it fails.
        if let Err(e) = err {
            assert!(matches!(e, CoreError::NoAcceptedSamples { .. }));
        }
    }

    #[test]
    fn check_display() {
        let window = EquivalenceWindow::with_bounds(4, 6);
        let check = exact_window_exchangeability(&window, 0.5).unwrap();
        assert!(check.to_string().contains("event mass"));
    }
}
