//! Workspace source discovery for `xp lint`.
//!
//! Collects every `.rs` file under a root into the repo-relative,
//! forward-slash path map [`crate::rules::lint_files`] consumes,
//! skipping build output (`target/`), the offline dependency stubs
//! (`vendor/`), version control internals (`.git/`), and lint fixture
//! trees (`fixtures/` — those contain deliberate violations).

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

/// Directory names never descended into.
const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "fixtures"];

/// Reads every `.rs` file under `root` into a path → source map. Paths
/// are relative to `root` and use `/` separators on every platform, so
/// rule path matching is portable.
///
/// # Errors
///
/// Propagates the underlying I/O error when `root` or one of its
/// children cannot be read.
pub fn collect_workspace(root: &Path) -> io::Result<BTreeMap<String, String>> {
    let mut files = BTreeMap::new();
    walk(root, Path::new(""), &mut files)?;
    Ok(files)
}

fn walk(dir: &Path, rel: &Path, files: &mut BTreeMap<String, String>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let name = entry.file_name();
        let name_str = name.to_string_lossy();
        let path = entry.path();
        let rel_path = rel.join(&name);
        if path.is_dir() {
            if SKIP_DIRS.contains(&name_str.as_ref()) {
                continue;
            }
            walk(&path, &rel_path, files)?;
        } else if name_str.ends_with(".rs") {
            let text = fs::read_to_string(&path)?;
            let key = rel_path
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            files.insert(key, text);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_rs_files_and_skips_vendor_target_fixtures() {
        let root = std::env::temp_dir().join(format!("lint_walk_{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/x/src")).unwrap();
        fs::create_dir_all(root.join("vendor/fake/src")).unwrap();
        fs::create_dir_all(root.join("target/debug")).unwrap();
        fs::create_dir_all(root.join("crates/x/fixtures/bad")).unwrap();
        fs::write(root.join("crates/x/src/lib.rs"), "fn a() {}\n").unwrap();
        fs::write(root.join("crates/x/src/notes.txt"), "not rust\n").unwrap();
        fs::write(root.join("vendor/fake/src/lib.rs"), "fn v() {}\n").unwrap();
        fs::write(root.join("target/debug/gen.rs"), "fn t() {}\n").unwrap();
        fs::write(root.join("crates/x/fixtures/bad/e.rs"), "unsafe {}\n").unwrap();
        let files = collect_workspace(&root).unwrap();
        assert_eq!(
            files.keys().collect::<Vec<_>>(),
            vec!["crates/x/src/lib.rs"]
        );
        fs::remove_dir_all(&root).unwrap();
    }
}
