//! Oracle request overhead: cost per weak/strong request including view
//! bookkeeping.

use criterion::{criterion_group, criterion_main, Criterion};
use nonsearch_generators::{rng_from_seed, MergedMori};
use nonsearch_graph::NodeId;
use nonsearch_search::{StrongSearchState, WeakSearchState};

fn bench_oracles(c: &mut Criterion) {
    let mori = MergedMori::sample(10_000, 2, 0.5, &mut rng_from_seed(1)).unwrap();
    let graph = mori.undirected();

    let mut group = c.benchmark_group("oracle");
    group.sample_size(20);

    group.bench_function("weak_flood_10k", |b| {
        b.iter(|| {
            // Resolve every edge once, BFS style.
            let mut state = WeakSearchState::new(&graph, NodeId::from_label(1)).unwrap();
            let mut cursor = 0usize;
            while cursor < state.view().len() {
                let v = state.view().discovered()[cursor];
                let pending = state.view().unexplored_edges_of(v);
                if pending.is_empty() {
                    cursor += 1;
                    continue;
                }
                for e in pending {
                    state.request(v, e).unwrap();
                }
            }
            state.requests()
        });
    });

    group.bench_function("strong_expand_all_10k", |b| {
        b.iter(|| {
            let mut state = StrongSearchState::new(&graph, NodeId::from_label(1)).unwrap();
            let mut cursor = 0usize;
            while cursor < state.view().len() {
                let v = state.view().discovered()[cursor];
                cursor += 1;
                state.request(v).unwrap();
            }
            state.requests()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_oracles);
criterion_main!(benches);
