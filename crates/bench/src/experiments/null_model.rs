//! E15 — degree-preserving null models: does wiring history matter, or
//! only the degree sequence?
//!
//! Adamic et al. analyse high-degree search on *pure* power-law random
//! graphs; the paper's evolving models grow their wiring through
//! preferential attachment. Rewiring each sampled Barabási–Albert graph
//! with degree-preserving edge swaps (Maslov–Sneppen) keeps every
//! degree and randomizes everything else, so comparing weak-model
//! search on original vs rewired ensembles isolates the contribution of
//! structure beyond the degree sequence. Expected shape: both ensembles
//! show the same Ω(√n)-like growth — consistent with the paper's
//! message that scale-free degree statistics alone already defeat local
//! search.
//!
//! With `--corpus`, originals come from the stored ensemble and the
//! rewired lane from its stored variant 0; without it, both are derived
//! on the fly from the same per-trial streams the corpus builder uses
//! (`child 0` graph, `subsequence(1).child 0` rewiring), so a corpus
//! built with this experiment's model, seed, and sizes reproduces the
//! generate path bit for bit.

use super::{open_corpus, print_banner, resolve_source};
use nonsearch_analysis::{fit_log_log, Table};
use nonsearch_core::{BarabasiAlbertModel, GraphModel};
use nonsearch_engine::{
    elapsed_ns, resolved_workers, run_lanes_observed, ExpContext, ExperimentSpec, GraphSource,
    JsonValue, ResourceSample,
};
use nonsearch_generators::{degree_preserving_rewire, SeedSequence};
use nonsearch_graph::NodeId;
use nonsearch_search::{run_weak_in, SearchScratch, SearchTask, SearcherKind, SuccessCriterion};
use std::sync::Arc;

pub(super) const SPEC: ExperimentSpec = ExperimentSpec {
    name: "null-model",
    id: "E15",
    claim: "degree-preserving rewiring keeps BA search cost Ω(√n)-shaped",
    default_seed: 0xE15,
    run,
};

const SWAPS_PER_EDGE: usize = 10;
const SEARCHERS: [SearcherKind; 2] = [SearcherKind::HighDegree, SearcherKind::BfsFlood];
const VARIANTS: [&str; 2] = ["original", "rewired"];

fn run(ctx: &mut ExpContext) {
    print_banner(
        ctx,
        "E15 / degree-preserving null model",
        "rewiring a BA ensemble to a degree-matched null model leaves \
         weak-model search cost Ω(√n)-shaped: the degree sequence, not \
         the attachment history, defeats local search",
    );

    let model = BarabasiAlbertModel { m: 2 };
    let sizes = ctx.options.sweep(&[512, 1024, 2048, 4096]);
    let trial_count = ctx.options.trial_count(10);
    let budget_multiplier = 30;
    let corpus = open_corpus(ctx);
    let original_source = resolve_source(corpus.as_ref(), &model, &sizes);
    // The rewired lane prefers the corpus's stored variant 0; otherwise
    // each trial rewires its own original on the fly.
    let variant_source: Option<Box<dyn GraphSource>> = corpus.as_ref().and_then(|c| {
        if c.check_compatible(&model.name(), &sizes).is_ok() {
            match c.variant_source(0) {
                Ok(source) => {
                    println!("null graphs: {}", source.describe());
                    return Some(Box::new(source) as Box<dyn GraphSource>);
                }
                Err(e) => println!("note: rewiring on the fly — {e}"),
            }
        }
        None
    });

    let seeds = SeedSequence::new(ctx.seed);
    let mut table = Table::with_columns(&["variant", "searcher", "n", "mean", "ci95", "success"]);
    // series[variant][searcher] = (n, mean) points for the exponent fit.
    let mut series = vec![vec![Vec::new(); SEARCHERS.len()]; VARIANTS.len()];

    let tracer = ctx.tracer.clone();
    for (size_idx, &n) in sizes.iter().enumerate() {
        let _cell_span = tracer.span("size-cell");
        let size_seeds = seeds.subsequence(size_idx as u64);
        // lint: allow(clock-env): profile/phase wall-clock, reported in telemetry records, never aggregated
        let cell_start = std::time::Instant::now();
        let (lanes, obs) = run_lanes_observed(
            trial_count,
            VARIANTS.len() * SEARCHERS.len(),
            ctx.options.threads,
            &size_seeds,
            // Per-worker pool: one scratch plus one instance of each
            // searcher per variant lane, reused across trials.
            || {
                (
                    SearchScratch::new(),
                    (0..VARIANTS.len() * SEARCHERS.len())
                        .map(|i| SEARCHERS[i % SEARCHERS.len()].build())
                        .collect::<Vec<_>>(),
                )
            },
            |(scratch, searchers), obs, trial, trial_seeds| {
                // lint: allow(clock-env): profile/phase wall-clock, reported in telemetry records, never aggregated
                let fetch_start = std::time::Instant::now();
                let original = original_source.trial_graph(n, trial, &trial_seeds);
                let fetch_ns = elapsed_ns(fetch_start);
                if original_source.is_stored() {
                    obs.phases.load_ns += fetch_ns;
                } else {
                    obs.phases.generate_ns += fetch_ns;
                }
                // lint: allow(clock-env): profile/phase wall-clock, reported in telemetry records, never aggregated
                let rewire_start = std::time::Instant::now();
                let rewired = match &variant_source {
                    Some(source) => source.trial_graph(n, trial, &trial_seeds),
                    None => {
                        // Same derivation as the corpus builder's variant 0.
                        let mut rng = trial_seeds.subsequence(1).child_rng(0);
                        let (null, _) =
                            degree_preserving_rewire(&original, SWAPS_PER_EDGE, &mut rng)
                                .expect("BA samples are simple graphs");
                        Arc::new(null)
                    }
                };
                // A stored variant is a load; an on-the-fly rewire is
                // generation work.
                let rewire_ns = elapsed_ns(rewire_start);
                if variant_source.is_some() {
                    obs.phases.load_ns += rewire_ns;
                } else {
                    obs.phases.generate_ns += rewire_ns;
                }
                let resolutions_before = scratch.view().edge_resolutions();
                let resets_before = scratch.view().resets();
                let m = &mut obs.metrics;
                let requests_before = m.requests;
                // lint: allow(clock-env): profile/phase wall-clock, reported in telemetry records, never aggregated
                let search_start = std::time::Instant::now();
                let mut measures = Vec::with_capacity(VARIANTS.len() * SEARCHERS.len());
                for (v_idx, graph) in [&original, &rewired].into_iter().enumerate() {
                    let actual = graph.node_count();
                    let task = SearchTask::new(NodeId::from_label(1), NodeId::from_label(actual))
                        .with_criterion(SuccessCriterion::DiscoverTarget)
                        .with_budget(budget_multiplier * actual);
                    for s_idx in 0..SEARCHERS.len() {
                        let lane_idx = v_idx * SEARCHERS.len() + s_idx;
                        let mut rng = trial_seeds.child_rng(1 + lane_idx as u64);
                        let searcher = &mut searchers[lane_idx];
                        let rescans_before = searcher.frontier_rescans();
                        let outcome = run_weak_in(scratch, graph, &task, &mut **searcher, &mut rng)
                            .expect("suite searchers never violate the protocol");
                        m.requests += outcome.requests as u64;
                        m.discoveries += outcome.discovered as u64;
                        m.frontier_rescans += searcher.frontier_rescans() - rescans_before;
                        measures.push(nonsearch_engine::TrialMeasure::new(
                            outcome.requests as f64,
                            outcome.found,
                        ));
                    }
                }
                let search_ns = elapsed_ns(search_start);
                // lint: allow(clock-env): profile/phase wall-clock, reported in telemetry records, never aggregated
                let harvest_start = std::time::Instant::now();
                m.edge_resolutions += scratch.view().edge_resolutions() - resolutions_before;
                m.scratch_resets += scratch.view().resets() - resets_before;
                m.observe_trial_requests(m.requests - requests_before);
                obs.phases.search_ns += search_ns;
                obs.phases.harvest_ns += elapsed_ns(harvest_start);
                measures
            },
        );
        let wall_ms = cell_start.elapsed().as_secs_f64() * 1e3;
        let metrics = obs.metrics;

        for (lane_idx, lane) in lanes.iter().enumerate() {
            let v_idx = lane_idx / SEARCHERS.len();
            let s_idx = lane_idx % SEARCHERS.len();
            table.row(vec![
                VARIANTS[v_idx].into(),
                SEARCHERS[s_idx].name().to_string(),
                n.to_string(),
                format!("{:.1}", lane.mean()),
                format!("{:.1}", lane.ci95()),
                format!("{:.2}", lane.success_rate()),
            ]);
            series[v_idx][s_idx].push((n as f64, lane.mean().max(1.0)));
            ctx.writer
                .record_cell(vec![
                    ("model", JsonValue::from("barabasi-albert")),
                    ("m", JsonValue::from(2usize)),
                    ("variant", JsonValue::from(VARIANTS[v_idx])),
                    ("swaps_per_edge", JsonValue::from(SWAPS_PER_EDGE)),
                    ("searcher", JsonValue::from(SEARCHERS[s_idx].name())),
                    ("n", JsonValue::from(n)),
                    ("trials", JsonValue::from(trial_count)),
                    ("seed", JsonValue::from(ctx.seed)),
                    ("mean", JsonValue::from(lane.mean())),
                    ("ci95", JsonValue::from(lane.ci95())),
                    ("success", JsonValue::from(lane.success_rate())),
                ])
                .expect("write cell record");
        }
        if ctx.options.profile {
            let requests: f64 = lanes
                .iter()
                .map(|lane| lane.mean() * trial_count as f64)
                .sum();
            ctx.writer
                .record_profile(vec![
                    ("model", JsonValue::from("barabasi-albert")),
                    ("n", JsonValue::from(n)),
                    ("trials", JsonValue::from(trial_count)),
                    ("lanes", JsonValue::from(lanes.len())),
                    ("requests", JsonValue::from(requests)),
                    ("wall_ms", JsonValue::from(wall_ms)),
                    (
                        "requests_per_sec",
                        JsonValue::from(requests / (wall_ms / 1e3).max(f64::EPSILON)),
                    ),
                ])
                .expect("write profile record");
            ctx.writer
                .record_metrics(
                    vec![
                        ("model", JsonValue::from("barabasi-albert")),
                        ("n", JsonValue::from(n)),
                    ],
                    &metrics,
                )
                .expect("write metrics record");
            ctx.writer
                .record_resource(
                    vec![
                        ("model", JsonValue::from("barabasi-albert")),
                        ("n", JsonValue::from(n)),
                    ],
                    wall_ms as u64,
                    resolved_workers(ctx.options.threads, trial_count),
                    &obs.phases,
                    obs.allocations,
                    &ResourceSample::current(),
                )
                .expect("write resource record");
        }
    }
    println!("{table}");

    let mut fits = Table::with_columns(&["searcher", "original exponent", "rewired exponent"]);
    for (s_idx, kind) in SEARCHERS.iter().enumerate() {
        let exponent = |v_idx: usize| -> String {
            let pts: &Vec<(f64, f64)> = &series[v_idx][s_idx];
            let xs: Vec<f64> = pts.iter().map(|&(n, _)| n).collect();
            let ys: Vec<f64> = pts.iter().map(|&(_, c)| c).collect();
            fit_log_log(&xs, &ys).map_or("-".into(), |f| format!("{:.3}", f.slope))
        };
        fits.row(vec![kind.name().to_string(), exponent(0), exponent(1)]);
    }
    println!("{fits}");
    println!("expected: matching growth exponents across the two columns —");
    println!("randomizing the wiring (degrees fixed) neither helps nor hurts");
    println!("local search, so non-searchability is a degree-sequence effect.");
}
