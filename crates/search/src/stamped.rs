//! The one epoch-stamped dense map all hot-path state is built on.
//!
//! A [`StampedMap`] stores values in a flat array indexed by a dense id
//! (`NodeId`/`EdgeId` index) and tracks *presence* with an epoch stamp
//! per slot: an entry is present iff `slot.stamp == epoch`. Clearing
//! the whole map is therefore O(1) — [`reset`](StampedMap::reset) bumps
//! the epoch, invalidating every stamp at once — which is what lets one
//! scratch serve thousands of Monte-Carlo trials without touching (or
//! re-acquiring) memory between them.
//!
//! # The audited wrap path
//!
//! The epoch is a `u32`; once per ~4 billion resets the bump would
//! wrap to a value old stamps still carry, so the wrap reset instead
//! zero-fills every stamp and restarts the epoch at 1 (stamps start at
//! 0, so freshly grown slots never read as present). This module is the
//! **only** place in the crate that implements that wrap — the previous
//! three hand-rolled copies (in `DiscoveredView`, `FrontierCursors`,
//! and `StampedNodeSet`) each carried their own, which is three places
//! a stale-stamp bug could silently corrupt an aggregate. Wrap coverage
//! lives here too, driven through the [`near_wrap`](StampedMap::near_wrap)
//! constructor instead of private-field pokes.

/// One dense slot: the epoch stamp and the payload it guards. The pair
/// is stored inline so a presence check and the value read that almost
/// always follows it share a cache line.
#[derive(Debug, Clone)]
struct Slot<V> {
    stamp: u32,
    value: V,
}

/// A dense id-indexed map with O(1) epoch-stamped clearing.
///
/// Semantics of a `HashMap<usize, V>` restricted to dense keys, with:
///
/// * `contains`/`get`/`insert` as single array reads (no hashing);
/// * [`reset`](StampedMap::reset) in O(1) via an epoch bump, keeping
///   every allocation (see the module docs for the audited wrap path);
/// * explicit [`reserve`](StampedMap::reserve) so a caller that knows
///   the id universe up front can make even the *first* use
///   allocation-free.
///
/// # Example
///
/// ```
/// use nonsearch_search::StampedMap;
///
/// let mut map: StampedMap<u64> = StampedMap::new();
/// assert!(map.insert(5, 40));
/// assert!(!map.insert(5, 99)); // already present: value untouched
/// assert_eq!(map.get(5), Some(&40));
/// map.reset(); // O(1): no slot is touched
/// assert_eq!(map.get(5), None);
/// ```
#[derive(Debug, Clone)]
pub struct StampedMap<V> {
    /// Current epoch; stamps from other epochs read as "absent".
    epoch: u32,
    /// Entries present in the current epoch.
    live: usize,
    slots: Vec<Slot<V>>,
}

impl<V> Default for StampedMap<V> {
    fn default() -> Self {
        StampedMap {
            // Stamps start at 0 and the epoch at 1, so freshly grown
            // slots never read as present.
            epoch: 1,
            live: 0,
            slots: Vec::new(),
        }
    }
}

impl<V> StampedMap<V> {
    /// An empty map; the backing array grows on demand (or up front via
    /// [`reserve`](StampedMap::reserve)).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries present in the current epoch.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no entry is present.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Highest index the map can hold without growing. Indices below
    /// this bound never allocate, whatever their presence state.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// `true` if `index` holds an entry in the current epoch.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        self.slots
            .get(index)
            .is_some_and(|slot| slot.stamp == self.epoch)
    }

    /// The value at `index`, if present.
    #[inline]
    pub fn get(&self, index: usize) -> Option<&V> {
        match self.slots.get(index) {
            Some(slot) if slot.stamp == self.epoch => Some(&slot.value),
            _ => None,
        }
    }

    /// Mutable access to the value at `index`, if present.
    #[inline]
    pub fn get_mut(&mut self, index: usize) -> Option<&mut V> {
        match self.slots.get_mut(index) {
            Some(slot) if slot.stamp == self.epoch => Some(&mut slot.value),
            _ => None,
        }
    }

    /// Empties the map in O(1), keeping the allocation.
    ///
    /// This is the crate's single epoch-wrap implementation: the bump
    /// path touches no slot; the wrap path (once per `u32::MAX - 1`
    /// resets) zero-fills the stamps and restarts the epoch at 1.
    // lint: alloc-free
    pub fn reset(&mut self) {
        self.live = 0;
        if self.epoch == u32::MAX {
            // Once per 2^32 resets the stamps really are cleared.
            for slot in &mut self.slots {
                slot.stamp = 0;
            }
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// A map whose *next* [`reset`](StampedMap::reset) takes the wrap
    /// path: the epoch starts at `u32::MAX`. Exists so wrap coverage
    /// (here and in every structure built on this map) drives the
    /// public API instead of poking private fields.
    #[doc(hidden)]
    pub fn near_wrap() -> Self {
        StampedMap {
            epoch: u32::MAX,
            live: 0,
            slots: Vec::new(),
        }
    }
}

impl<V: Default> StampedMap<V> {
    /// Grows the backing array to hold indices `0..capacity`, so later
    /// operations below that bound trigger no allocation. Never
    /// shrinks; a no-op once large enough.
    pub fn reserve(&mut self, capacity: usize) {
        if self.slots.len() < capacity {
            self.slots.resize_with(capacity, || Slot {
                stamp: 0,
                value: V::default(),
            });
        }
    }

    /// Inserts `value` at `index` iff nothing is present there; returns
    /// `true` on insertion. An existing entry's value is left untouched
    /// — the caller that wants an upsert uses [`put`](StampedMap::put).
    #[inline]
    pub fn insert(&mut self, index: usize, value: V) -> bool {
        self.reserve(index + 1);
        let epoch = self.epoch;
        let slot = &mut self.slots[index];
        if slot.stamp == epoch {
            return false;
        }
        slot.stamp = epoch;
        slot.value = value;
        self.live += 1;
        true
    }

    /// Upserts `value` at `index`, overwriting any present entry.
    #[inline]
    pub fn put(&mut self, index: usize, value: V) {
        self.reserve(index + 1);
        let epoch = self.epoch;
        let slot = &mut self.slots[index];
        if slot.stamp != epoch {
            slot.stamp = epoch;
            self.live += 1;
        }
        slot.value = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behaves_like_a_map() {
        let mut map: StampedMap<u32> = StampedMap::new();
        assert!(map.is_empty());
        assert_eq!(map.capacity(), 0);
        assert!(map.insert(3, 30));
        assert!(!map.insert(3, 99));
        assert_eq!(map.get(3), Some(&30));
        assert!(map.contains(3));
        assert!(!map.contains(2));
        assert_eq!(map.get(100), None);
        map.put(3, 31);
        map.put(7, 70);
        assert_eq!(map.get(3), Some(&31));
        assert_eq!(map.len(), 2);
        *map.get_mut(7).unwrap() += 1;
        assert_eq!(map.get(7), Some(&71));
        assert!(map.get_mut(6).is_none());
    }

    #[test]
    fn reset_forgets_everything_and_keeps_capacity() {
        let mut map: StampedMap<u8> = StampedMap::new();
        map.insert(9, 1);
        let capacity = map.capacity();
        map.reset();
        assert!(map.is_empty());
        assert!(!map.contains(9));
        assert_eq!(map.get(9), None);
        assert_eq!(map.capacity(), capacity);
        // Stale values must not resurface through re-insertion checks.
        assert!(map.insert(9, 2));
        assert_eq!(map.get(9), Some(&2));
    }

    #[test]
    fn reserve_presizes_and_never_shrinks() {
        let mut map: StampedMap<u8> = StampedMap::new();
        map.reserve(16);
        assert_eq!(map.capacity(), 16);
        assert!(map.is_empty());
        map.insert(15, 5);
        map.reserve(4);
        assert_eq!(map.capacity(), 16);
        assert_eq!(map.get(15), Some(&5));
    }

    #[test]
    fn epoch_wrap_clears_stamps() {
        let mut map: StampedMap<u8> = StampedMap::near_wrap();
        map.insert(1, 7);
        assert!(map.contains(1));
        map.reset(); // epoch was u32::MAX: this is the wrap path
        assert!(!map.contains(1));
        assert_eq!(map.get(1), None);
        assert!(map.insert(1, 8));
        assert_eq!(map.get(1), Some(&8));
        // The epoch restarted low: billions of further resets to go.
        map.reset();
        assert!(!map.contains(1));
    }

    #[test]
    fn wrap_then_grow_never_reads_fresh_slots_as_present() {
        let mut map: StampedMap<u8> = StampedMap::near_wrap();
        map.insert(0, 1);
        map.reset();
        // Growth after the wrap: new slots carry stamp 0, epoch is 1…
        map.reserve(8);
        for i in 0..8 {
            assert!(!map.contains(i), "slot {i} read as present");
        }
    }
}
