//! Closed-form quantities from the paper and its related work.

use std::error::Error;
use std::fmt;

/// Errors from the lower-bound machinery.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A numeric parameter was outside its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// The offending value, formatted.
        value: String,
        /// The valid range, human-readable.
        expected: &'static str,
    },
    /// Monte-Carlo conditioning never accepted a sample.
    NoAcceptedSamples {
        /// Trials attempted.
        trials: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter {
                name,
                value,
                expected,
            } => {
                write!(
                    f,
                    "parameter `{name}` = {value} is invalid (expected {expected})"
                )
            }
            CoreError::NoAcceptedSamples { trials } => {
                write!(
                    f,
                    "no samples satisfied the conditioning event in {trials} trials"
                )
            }
        }
    }
}

impl Error for CoreError {}

impl CoreError {
    pub(crate) fn invalid<V: fmt::Display>(
        name: &'static str,
        value: V,
        expected: &'static str,
    ) -> Self {
        CoreError::InvalidParameter {
            name,
            value: value.to_string(),
            expected,
        }
    }
}

pub(crate) fn check_probability(name: &'static str, value: f64) -> crate::Result<()> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(CoreError::invalid(name, value, "a probability in [0, 1]"))
    }
}

/// Integer square root (floor).
pub(crate) fn isqrt(x: usize) -> usize {
    if x == 0 {
        return 0;
    }
    let mut r = (x as f64).sqrt() as usize;
    while (r + 1) * (r + 1) <= x {
        r += 1;
    }
    while r * r > x {
        r -= 1;
    }
    r
}

/// The window end of Lemma 3: `b = a + ⌊√(a−1)⌋`.
///
/// # Panics
///
/// Panics if `a < 2` (the Móri tree needs two seed vertices).
pub fn lemma3_window_end(a: usize) -> usize {
    assert!(a >= 2, "anchor must be at least 2");
    a + isqrt(a - 1)
}

/// Lemma 3's lower bound on the event probability: `e^{−(1−p)}`.
pub fn lemma3_bound(p: f64) -> f64 {
    (-(1.0 - p)).exp()
}

/// One conditional factor of the event probability:
/// `P(N_k ≤ a | E_{a,k−1}) = [p(k−2) + (1−p)a] / [p(k−2) + (1−p)(k−1)]`.
///
/// Conditional on the event so far, **every** edge of the tree on `k−1`
/// vertices points into `[1, a]`, so the preferential mass on `[1, a]` is
/// the whole indegree total `k−2`; the uniform mass splits `a` to `k−1`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `p ∉ [0, 1]` or `k ≤ a`.
pub fn mori_conditional_factor(k: usize, a: usize, p: f64) -> crate::Result<f64> {
    check_probability("p", p)?;
    if k <= a || a < 2 {
        return Err(CoreError::invalid("k", k, "a vertex index > a ≥ 2"));
    }
    let pref = p * (k - 2) as f64;
    Ok((pref + (1.0 - p) * a as f64) / (pref + (1.0 - p) * (k - 1) as f64))
}

/// Exact probability of the event `E_{a,b} = ∩_{a<k≤b} {N_k ≤ a}` in the
/// Móri tree with parameter `p`:
/// the product of [`mori_conditional_factor`] over `k ∈ (a, b]`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `p ∉ [0, 1]` or
/// `b < a` or `a < 2`.
pub fn mori_event_probability_exact(a: usize, b: usize, p: f64) -> crate::Result<f64> {
    check_probability("p", p)?;
    if a < 2 || b < a {
        return Err(CoreError::invalid(
            "(a, b)",
            format!("({a}, {b})"),
            "2 ≤ a ≤ b",
        ));
    }
    let mut prob = 1.0;
    for k in (a + 1)..=b {
        prob *= mori_conditional_factor(k, a, p)?;
    }
    Ok(prob)
}

/// The strong-model exponent of Theorem 1: `1/2 − p − ε` (meaningful for
/// `p < 1/2`).
pub fn strong_model_exponent(p: f64, epsilon: f64) -> f64 {
    0.5 - p - epsilon
}

/// Móri's maximum-degree growth exponent: the max degree of `G_t` grows
/// like `t^p` \[Mór05\], the fact powering the strong-model reduction.
pub fn mori_max_degree_exponent(p: f64) -> f64 {
    p
}

/// Adamic et al.'s mean-field cost exponent for high-degree search on
/// power-law graphs with exponent `k`: `2(1 − 2/k)`.
pub fn adamic_high_degree_exponent(k: f64) -> f64 {
    2.0 * (1.0 - 2.0 / k)
}

/// Adamic et al.'s mean-field cost exponent for the pure random walk:
/// `3(1 − 2/k)`.
pub fn adamic_random_walk_exponent(k: f64) -> f64 {
    3.0 * (1.0 - 2.0 / k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isqrt_basics() {
        assert_eq!(isqrt(0), 0);
        assert_eq!(isqrt(1), 1);
        assert_eq!(isqrt(3), 1);
        assert_eq!(isqrt(4), 2);
        assert_eq!(isqrt(99), 9);
        assert_eq!(isqrt(100), 10);
        for x in 0..2000usize {
            let r = isqrt(x);
            assert!(r * r <= x && (r + 1) * (r + 1) > x, "x = {x}");
        }
    }

    #[test]
    fn window_end_examples() {
        assert_eq!(lemma3_window_end(2), 3); // √1 = 1
        assert_eq!(lemma3_window_end(10), 13); // √9 = 3
        assert_eq!(lemma3_window_end(101), 111); // √100 = 10
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn window_end_needs_seed() {
        let _ = lemma3_window_end(1);
    }

    #[test]
    fn conditional_factor_matches_hand_computation() {
        // k = 3, a = 2: the factor is [p + 2(1−p)] / [p + 2(1−p)] = 1
        // (both existing vertices are ≤ a, the event cannot fail).
        let f = mori_conditional_factor(3, 2, 0.5).unwrap();
        assert!((f - 1.0).abs() < 1e-12);
        // k = 4, a = 2, p = 0.5: [1 + 0.5·2] / [1 + 0.5·3] = 2/2.5 = 0.8.
        let f = mori_conditional_factor(4, 2, 0.5).unwrap();
        assert!((f - 0.8).abs() < 1e-12);
    }

    #[test]
    fn factors_are_probabilities_and_increase_with_p() {
        for &p in &[0.0, 0.3, 0.7, 1.0] {
            for k in 11..40 {
                let f = mori_conditional_factor(k, 10, p).unwrap();
                assert!((0.0..=1.0).contains(&f));
            }
        }
        let lo = mori_conditional_factor(20, 10, 0.2).unwrap();
        let hi = mori_conditional_factor(20, 10, 0.9).unwrap();
        assert!(hi > lo);
    }

    #[test]
    fn p_one_event_is_certain() {
        // Pure preferential: no mass ever lands past a (all indegree ≤ a).
        let prob = mori_event_probability_exact(50, 60, 1.0).unwrap();
        assert!((prob - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lemma3_bound_holds_at_the_prescribed_window() {
        for &p in &[0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            for &a in &[10usize, 100, 1_000, 10_000, 100_000] {
                let b = lemma3_window_end(a);
                let exact = mori_event_probability_exact(a, b, p).unwrap();
                let bound = lemma3_bound(p);
                assert!(
                    exact >= bound - 1e-12,
                    "p = {p}, a = {a}: exact {exact} < bound {bound}"
                );
            }
        }
    }

    #[test]
    fn event_probability_decreases_with_window_width() {
        let a = 100;
        let narrow = mori_event_probability_exact(a, a + 5, 0.3).unwrap();
        let wide = mori_event_probability_exact(a, a + 50, 0.3).unwrap();
        assert!(narrow > wide);
        // Empty window: probability 1.
        assert_eq!(mori_event_probability_exact(a, a, 0.3).unwrap(), 1.0);
    }

    #[test]
    fn validation() {
        assert!(mori_conditional_factor(5, 5, 0.5).is_err());
        assert!(mori_conditional_factor(5, 1, 0.5).is_err());
        assert!(mori_event_probability_exact(10, 9, 0.5).is_err());
        assert!(mori_event_probability_exact(10, 20, 1.5).is_err());
    }

    #[test]
    fn related_work_exponents() {
        // k = 2: both exponents vanish (search is constant-ish).
        assert!(adamic_high_degree_exponent(2.0).abs() < 1e-12);
        assert!(adamic_random_walk_exponent(2.0).abs() < 1e-12);
        // k = 3: 2/3 vs 1.
        assert!((adamic_high_degree_exponent(3.0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((adamic_random_walk_exponent(3.0) - 1.0).abs() < 1e-12);
        // The walk exponent always dominates.
        for k in [2.1, 2.5, 2.9] {
            assert!(adamic_random_walk_exponent(k) > adamic_high_degree_exponent(k));
        }
    }

    #[test]
    fn strong_exponent_degrades_with_p() {
        assert!((strong_model_exponent(0.2, 0.0) - 0.3).abs() < 1e-12);
        assert!(strong_model_exponent(0.5, 0.0).abs() < 1e-12);
        assert!(strong_model_exponent(0.6, 0.1) < 0.0);
        assert_eq!(mori_max_degree_exponent(0.4), 0.4);
    }

    #[test]
    fn error_display() {
        let e = CoreError::invalid("p", 2.0, "a probability in [0, 1]");
        assert!(e.to_string().contains("`p`"));
        let e = CoreError::NoAcceptedSamples { trials: 7 };
        assert!(e.to_string().contains('7'));
    }
}
