//! Erdős–Rényi random graphs `G(n, p)` and `G(n, m)`.
//!
//! The paper notes that Kleinberg-style models have degree distributions
//! "close to a Poisson distribution" — the ER baseline makes that contrast
//! measurable next to the scale-free generators.

use crate::error::check_probability;
use crate::{GeneratorError, Result};
use nonsearch_graph::UndirectedCsr;
use rand::Rng;
use std::collections::HashSet;

/// Namespace for the two classic Erdős–Rényi samplers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErdosRenyi;

impl ErdosRenyi {
    /// Samples `G(n, p)`: every unordered pair appears independently with
    /// probability `p`.
    ///
    /// Uses geometric gap-skipping, so the cost is O(n + m) rather than
    /// O(n²) for sparse graphs.
    ///
    /// # Errors
    ///
    /// Returns [`GeneratorError::InvalidParameter`] if `p ∉ [0, 1]`.
    pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Result<UndirectedCsr> {
        check_probability("p", p)?;
        if n == 0 || p == 0.0 {
            return Ok(UndirectedCsr::from_edges(n, []).expect("no edges"));
        }
        let mut edges: Vec<(usize, usize)> = Vec::new();
        if p >= 1.0 {
            for u in 0..n {
                for v in (u + 1)..n {
                    edges.push((u, v));
                }
            }
            return Ok(UndirectedCsr::from_edges(n, edges).expect("pairs in range"));
        }
        // Walk the linearized pair index with geometric gaps.
        let total_pairs = n * (n - 1) / 2;
        let log1mp = (1.0 - p).ln();
        let mut idx: usize = 0;
        loop {
            let u01: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let gap = (u01.ln() / log1mp).floor() as usize;
            idx = match idx.checked_add(gap) {
                Some(i) if i < total_pairs => i,
                _ => break,
            };
            edges.push(pair_from_index(idx, n));
            idx += 1;
            if idx >= total_pairs {
                break;
            }
        }
        Ok(UndirectedCsr::from_edges(n, edges).expect("pairs in range"))
    }

    /// Samples `G(n, m)`: a uniform graph with exactly `m` distinct edges
    /// (no self-loops, no parallels).
    ///
    /// # Errors
    ///
    /// Returns [`GeneratorError::InvalidParameter`] if `m` exceeds
    /// `n(n−1)/2`.
    pub fn gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Result<UndirectedCsr> {
        let total_pairs = if n < 2 { 0 } else { n * (n - 1) / 2 };
        if m > total_pairs {
            return Err(GeneratorError::invalid(
                "m",
                m,
                "at most n(n-1)/2 distinct edges",
            ));
        }
        // Rejection is fine while m is at most half of all pairs;
        // otherwise sample the complement.
        let invert = m > total_pairs / 2;
        let want = if invert { total_pairs - m } else { m };
        let mut chosen: HashSet<usize> = HashSet::with_capacity(want);
        while chosen.len() < want {
            chosen.insert(rng.gen_range(0..total_pairs));
        }
        let edges: Vec<(usize, usize)> = if invert {
            (0..total_pairs)
                .filter(|i| !chosen.contains(i))
                .map(|i| pair_from_index(i, n))
                .collect()
        } else {
            chosen.iter().map(|&i| pair_from_index(i, n)).collect()
        };
        Ok(UndirectedCsr::from_edges(n, edges).expect("pairs in range"))
    }
}

/// Maps a linear index in `0..n(n−1)/2` to the corresponding unordered
/// pair `(u, v)` with `u < v`, in row-major order of the strict upper
/// triangle.
fn pair_from_index(index: usize, n: usize) -> (usize, usize) {
    // Row u occupies indices [u·n − u(u+3)/2 ... ) — solve by scanning
    // from an analytic initial guess to stay O(1) amortized.
    let mut u = 0usize;
    let mut row_start = 0usize;
    loop {
        let row_len = n - u - 1;
        if index < row_start + row_len {
            return (u, u + 1 + (index - row_start));
        }
        row_start += row_len;
        u += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    fn pair_indexing_is_a_bijection() {
        let n = 7;
        let mut seen = HashSet::new();
        for i in 0..(n * (n - 1) / 2) {
            let (u, v) = pair_from_index(i, n);
            assert!(u < v && v < n);
            assert!(seen.insert((u, v)));
        }
        assert_eq!(seen.len(), 21);
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = rng_from_seed(1);
        let empty = ErdosRenyi::gnp(10, 0.0, &mut rng).unwrap();
        assert_eq!(empty.edge_count(), 0);
        let full = ErdosRenyi::gnp(10, 1.0, &mut rng).unwrap();
        assert_eq!(full.edge_count(), 45);
    }

    #[test]
    fn gnp_edge_count_concentrates() {
        let mut rng = rng_from_seed(2);
        let n = 400;
        let p = 0.02;
        let trials = 20;
        let total: usize = (0..trials)
            .map(|_| ErdosRenyi::gnp(n, p, &mut rng).unwrap().edge_count())
            .sum();
        let mean = total as f64 / trials as f64;
        let expect = p * (n * (n - 1) / 2) as f64;
        assert!(
            (mean - expect).abs() < 0.08 * expect,
            "mean = {mean}, expect = {expect}"
        );
    }

    #[test]
    fn gnm_exact_count_and_simple() {
        let mut rng = rng_from_seed(3);
        let g = ErdosRenyi::gnm(50, 100, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 100);
        assert_eq!(g.self_loop_count(), 0);
        use nonsearch_graph::GraphProperties;
        assert_eq!(g.parallel_edge_count(), 0);
    }

    #[test]
    fn gnm_dense_side_uses_complement() {
        let mut rng = rng_from_seed(4);
        let g = ErdosRenyi::gnm(10, 44, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 44);
    }

    #[test]
    fn gnm_validation() {
        let mut rng = rng_from_seed(5);
        assert!(ErdosRenyi::gnm(4, 7, &mut rng).is_err());
        assert!(ErdosRenyi::gnm(4, 6, &mut rng).is_ok());
        assert!(ErdosRenyi::gnm(0, 0, &mut rng).is_ok());
    }

    #[test]
    fn gnp_validation() {
        let mut rng = rng_from_seed(6);
        assert!(ErdosRenyi::gnp(4, 1.5, &mut rng).is_err());
        assert!(ErdosRenyi::gnp(4, -0.5, &mut rng).is_err());
    }

    #[test]
    fn determinism_per_seed() {
        let a = ErdosRenyi::gnp(64, 0.1, &mut rng_from_seed(7)).unwrap();
        let b = ErdosRenyi::gnp(64, 0.1, &mut rng_from_seed(7)).unwrap();
        assert_eq!(a, b);
    }
}
