//! E8 — scale-freeness of the models: power-law degree distributions.
//!
//! Thin wrapper over the registered `xp degree-dist` experiment; the
//! implementation lives in `nonsearch_bench::experiments`.

fn main() {
    nonsearch_bench::experiments::run_legacy("degree-dist");
}
