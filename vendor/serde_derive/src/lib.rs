//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The workspace derives serde traits on its data types so graphs and
//! provenance records stay interchange-ready, but nothing in-tree bounds
//! on the traits or serializes through them yet. Offline, the cheapest
//! faithful stand-in is a derive that parses nothing and emits nothing:
//! the attribute still resolves (so seed sources compile unchanged) and
//! no impl is generated (so no trait machinery is required).

use proc_macro::TokenStream;

/// Accepts any item, emits no code.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts any item, emits no code.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
