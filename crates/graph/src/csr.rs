//! Static undirected incidence view in compressed sparse row form.

use crate::storage::{CsrBytes, CsrLayout, CsrStorage};
use crate::{EdgeId, EvolvingDigraph, GraphError, NodeId, Result};
use std::fmt;
use std::sync::Arc;

/// A static undirected multigraph stored in compressed sparse row form.
///
/// Searching in the paper "always takes place in the corresponding
/// unoriented graph", so this is the representation consumed by the search
/// oracles and analysis routines. Each vertex owns a list of *incident
/// edge slots*; slot `i` of vertex `u` is the pair `(v, e)` meaning edge
/// `e` connects `u` to `v`. A self-loop contributes two slots to its
/// vertex, so `degree` follows the standard undirected convention.
///
/// Slots are exactly the "list of incident edges" a vertex exposes in the
/// paper's weak knowledge model: the searcher can name *(vertex, slot)*
/// without knowing the neighbor behind the slot.
///
/// # Example
///
/// ```
/// use nonsearch_graph::UndirectedCsr;
///
/// // Triangle 1-2, 2-3, 3-1 (zero-based input).
/// let g = UndirectedCsr::from_edges(3, [(0, 1), (1, 2), (2, 0)])?;
/// assert_eq!(g.degree(nonsearch_graph::NodeId::new(0)), 2);
/// assert_eq!(g.edge_count(), 3);
/// # Ok::<(), nonsearch_graph::GraphError>(())
/// ```
// No serde derives here (unlike `GraphRecord`): the borrowed storage
// variant holds region-backed slices a field-wise derive could never
// express against real serde. Interchange goes through `GraphRecord`
// or the binary `.nsg` format, both of which round-trip `raw_parts`.
#[derive(Clone)]
pub struct UndirectedCsr {
    /// The three CSR buffers (`offsets`, `slots`, `edge_list`), either
    /// heap-owned or borrowed zero-copy from a shared byte region such
    /// as a memory-mapped `.nsg` file. Every accessor goes through the
    /// storage, so searchers and analyses are agnostic to the backing.
    storage: CsrStorage,
}

/// The borrowed CSR buffers of an [`UndirectedCsr`]:
/// `(offsets, slots, edge_list)`. Returned by
/// [`UndirectedCsr::raw_parts`] and accepted (owned) by
/// [`UndirectedCsr::from_raw_parts`].
pub type RawCsrParts<'a> = (&'a [usize], &'a [(NodeId, EdgeId)], &'a [(NodeId, NodeId)]);

impl UndirectedCsr {
    #[inline]
    fn offsets(&self) -> &[usize] {
        self.storage.offsets()
    }

    #[inline]
    fn slots(&self) -> &[(NodeId, EdgeId)] {
        self.storage.slots()
    }

    #[inline]
    fn edge_list(&self) -> &[(NodeId, NodeId)] {
        self.storage.edge_list()
    }

    /// Builds the undirected view of an evolving digraph.
    ///
    /// Edge ids are preserved, so construction-time provenance (who chose
    /// which father, and when) can be joined back to edges encountered
    /// during a search.
    pub fn from_digraph(g: &EvolvingDigraph) -> Self {
        let n = g.node_count();
        let mut counts = vec![0usize; n];
        for (_, ep) in g.edges() {
            counts[ep.source.index()] += 1;
            counts[ep.target.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for c in &counts {
            acc += c;
            offsets.push(acc);
        }
        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        let mut slots = vec![(NodeId::new(0), EdgeId::new(0)); acc];
        let mut edge_list = Vec::with_capacity(g.edge_count());
        for (e, ep) in g.edges() {
            slots[cursor[ep.source.index()]] = (ep.target, e);
            cursor[ep.source.index()] += 1;
            slots[cursor[ep.target.index()]] = (ep.source, e);
            cursor[ep.target.index()] += 1;
            edge_list.push((ep.source, ep.target));
        }
        UndirectedCsr {
            storage: CsrStorage::Owned {
                offsets,
                slots,
                edge_list,
            },
        }
    }

    /// Builds an undirected graph from an explicit edge list over vertices
    /// `0..n` (zero-based pairs). Duplicate pairs produce parallel edges;
    /// `(v, v)` produces a self-loop.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if an endpoint is `≥ n`.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut g = EvolvingDigraph::with_capacity(n, 0);
        g.add_nodes(n);
        for (u, v) in edges {
            let (u, v) = (NodeId::new(u), NodeId::new(v));
            g.add_edge(u, v)?;
        }
        Ok(Self::from_digraph(&g))
    }

    /// Reassembles a graph directly from its CSR buffers, as produced by
    /// [`UndirectedCsr::raw_parts`] (or deserialized from the binary
    /// `.nsg` corpus format). Unlike [`UndirectedCsr::from_edges`] this
    /// preserves the exact incidence-slot order — including any
    /// [`shuffle_slots`](UndirectedCsr::shuffle_slots) permutation baked
    /// into a stored graph — and performs no re-derivation work beyond
    /// validation.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidCsr`] unless all of the following
    /// hold: `offsets` is non-empty, starts at `0`, is monotone, and ends
    /// at `slots.len()`; `slots.len() == 2 * edge_list.len()`; every slot
    /// and edge endpoint is in range; every edge id appears on exactly
    /// the two slots its endpoints own.
    pub fn from_raw_parts(
        offsets: Vec<usize>,
        slots: Vec<(NodeId, EdgeId)>,
        edge_list: Vec<(NodeId, NodeId)>,
    ) -> Result<Self> {
        validate_parts(&offsets, &slots, &edge_list)?;
        Ok(UndirectedCsr {
            storage: CsrStorage::Owned {
                offsets,
                slots,
                edge_list,
            },
        })
    }

    /// Borrows a graph zero-copy out of a shared byte `region` whose
    /// `layout` names the byte ranges of the three CSR buffers — the
    /// exact shape of a `.nsg` payload (little-endian `u64` offsets,
    /// then `(u32, u32)` slot and edge pairs). The region is typically
    /// a memory-mapped corpus file; no per-graph vectors are allocated
    /// and the page cache backs every access.
    ///
    /// The cast is *validated*, never assumed: the target's in-memory
    /// layout of the id tuples is probed against the on-disk shape
    /// ([`crate::zero_copy_support`]), the ranges are bounds- and
    /// alignment-checked, and the resulting view passes the same
    /// structural validation as [`UndirectedCsr::from_raw_parts`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidCsr`] if the target cannot express
    /// the cast (callers should fall back to an owned decode), the
    /// layout is out of bounds or misaligned, or the buffers are
    /// structurally inconsistent.
    pub fn from_csr_bytes(region: Arc<dyn CsrBytes>, layout: &CsrLayout) -> Result<Self> {
        let storage = CsrStorage::from_region(region, layout)
            .map_err(|reason| GraphError::InvalidCsr { reason })?;
        validate_parts(storage.offsets(), storage.slots(), storage.edge_list())?;
        Ok(UndirectedCsr { storage })
    }

    /// `true` if this graph borrows its buffers from a shared byte
    /// region (see [`UndirectedCsr::from_csr_bytes`]) instead of owning
    /// them.
    pub fn is_borrowed(&self) -> bool {
        self.storage.is_borrowed()
    }

    /// Copies borrowed buffers into owned vectors, detaching the graph
    /// from its backing region. No-op for owned graphs. Mutating
    /// operations ([`shuffle_slots`](UndirectedCsr::shuffle_slots)) do
    /// this implicitly.
    pub fn make_owned(&mut self) {
        self.storage.make_owned();
    }

    /// Borrows the three CSR buffers: `(offsets, slots, edge_list)`.
    ///
    /// Together with [`UndirectedCsr::from_raw_parts`] this is the
    /// lossless persistence primitive behind the binary corpus format:
    /// the buffers round-trip the graph exactly, slot order included.
    pub fn raw_parts(&self) -> RawCsrParts<'_> {
        (self.offsets(), self.slots(), self.edge_list())
    }

    /// Number of vertices.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets().len() - 1
    }

    /// Number of undirected edges (self-loops count once).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_list().len()
    }

    /// `true` if the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.node_count() == 0
    }

    /// Degree of `v` (self-loops count twice).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets()[v.index() + 1] - self.offsets()[v.index()]
    }

    /// The incidence slots of `v`: pairs `(neighbor, edge)`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[inline]
    pub fn incident(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        &self.slots()[self.offsets()[v.index()]..self.offsets()[v.index() + 1]]
    }

    /// Resolves incidence slot `slot` of vertex `v`.
    ///
    /// This is the primitive behind the weak model's request `(u, e)`:
    /// the searcher names a slot and learns the neighbor behind it.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] for an unknown vertex and
    /// [`GraphError::IncidenceOutOfBounds`] for a slot `≥ degree(v)`.
    pub fn incident_slot(&self, v: NodeId, slot: usize) -> Result<(NodeId, EdgeId)> {
        if v.index() >= self.node_count() {
            return Err(GraphError::NodeOutOfBounds {
                node: v,
                node_count: self.node_count(),
            });
        }
        self.incident(v)
            .get(slot)
            .copied()
            .ok_or(GraphError::IncidenceOutOfBounds {
                node: v,
                slot,
                degree: self.degree(v),
            })
    }

    /// Iterator over the neighbors of `v` (with multiplicity; a self-loop
    /// yields `v` twice).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn neighbors(&self, v: NodeId) -> Neighbors<'_> {
        Neighbors {
            inner: self.incident(v).iter(),
        }
    }

    /// Iterator over the incident `(neighbor, edge)` slots of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn incident_edges(&self, v: NodeId) -> IncidentEdges<'_> {
        IncidentEdges {
            inner: self.incident(v).iter(),
        }
    }

    /// Endpoints of edge `e` as stored at construction (source, target).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeOutOfBounds`] if `e` does not exist.
    pub fn edge_endpoints(&self, e: EdgeId) -> Result<(NodeId, NodeId)> {
        self.edge_list()
            .get(e.index())
            .copied()
            .ok_or(GraphError::EdgeOutOfBounds {
                edge: e,
                edge_count: self.edge_count(),
            })
    }

    /// `true` if some edge joins `u` and `v`.
    ///
    /// Runs in O(min(deg(u), deg(v))).
    ///
    /// # Panics
    ///
    /// Panics if either vertex is out of bounds.
    pub fn is_adjacent(&self, u: NodeId, v: NodeId) -> bool {
        let (probe, other) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(probe).any(|w| w == other)
    }

    /// Iterator over all vertices.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::new)
    }

    /// Iterator over `(EdgeId, (u, v))` for every undirected edge.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = (EdgeId, (NodeId, NodeId))> + '_ {
        self.edge_list()
            .iter()
            .enumerate()
            .map(|(i, &uv)| (EdgeId::new(i), uv))
    }

    /// The vertex with maximum degree, with its degree.
    ///
    /// Ties resolve to the oldest (smallest id) vertex. Returns `None` on
    /// an empty graph.
    pub fn max_degree(&self) -> Option<(NodeId, usize)> {
        (0..self.node_count())
            .map(|i| (NodeId::new(i), self.degree(NodeId::new(i))))
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
    }

    /// Randomly permutes every vertex's incident-slot order in place.
    ///
    /// Construction fills incidence lists in edge-insertion order, which
    /// in evolving models correlates with *arrival time* — information
    /// the paper's weak oracle does not give away. Experiments shuffle
    /// slots so that the presentation order carries no signal.
    ///
    /// A borrowed (mapped) graph is first detached into owned buffers
    /// (see [`make_owned`](UndirectedCsr::make_owned)) — the backing
    /// region is shared and read-only, so it is never mutated in place.
    pub fn shuffle_slots<R: rand::Rng + ?Sized>(&mut self, rng: &mut R) {
        use rand::seq::SliceRandom;
        let (offsets, slots) = self.storage.offsets_and_slots_mut();
        for v in 0..offsets.len() - 1 {
            slots[offsets[v]..offsets[v + 1]].shuffle(rng);
        }
    }

    /// Extracts the subgraph induced by `keep`, relabelling vertices to
    /// `0..keep.len()` in the order given. Returns the subgraph and the
    /// mapping from new index to original [`NodeId`].
    ///
    /// Edges with both endpoints in `keep` are retained (with fresh edge
    /// ids); duplicates in `keep` are ignored after the first occurrence.
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> (UndirectedCsr, Vec<NodeId>) {
        let mut old_of_new: Vec<NodeId> = Vec::with_capacity(keep.len());
        let mut new_of_old: Vec<Option<usize>> = vec![None; self.node_count()];
        for &v in keep {
            if new_of_old[v.index()].is_none() {
                new_of_old[v.index()] = Some(old_of_new.len());
                old_of_new.push(v);
            }
        }
        let edges = self.edges().filter_map(|(_, (u, v))| {
            match (new_of_old[u.index()], new_of_old[v.index()]) {
                (Some(a), Some(b)) => Some((a, b)),
                _ => None,
            }
        });
        let sub = UndirectedCsr::from_edges(old_of_new.len(), edges)
            .expect("relabelled endpoints are in range");
        (sub, old_of_new)
    }

    /// Extracts the largest connected component (ties to the component
    /// containing the smallest vertex id), relabelled to `0..size`.
    ///
    /// Returns the component and the mapping from new index to original
    /// [`NodeId`]. Returns an empty graph for an empty input.
    pub fn giant_component(&self) -> (UndirectedCsr, Vec<NodeId>) {
        let cc = crate::connected_components(self);
        let sizes = cc.sizes();
        let Some((giant_label, _)) = sizes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        else {
            return (UndirectedCsr::from_edges(0, []).expect("empty"), Vec::new());
        };
        let keep: Vec<NodeId> = self
            .nodes()
            .filter(|&v| cc.component_of(v) == giant_label)
            .collect();
        self.induced_subgraph(&keep)
    }
}

/// The structural validation shared by [`UndirectedCsr::from_raw_parts`]
/// (owned buffers) and [`UndirectedCsr::from_csr_bytes`] (borrowed
/// views): offsets monotone and consistent with the slot count, all ids
/// in range, and every edge id on exactly the two slots its endpoints
/// own.
fn validate_parts(
    offsets: &[usize],
    slots: &[(NodeId, EdgeId)],
    edge_list: &[(NodeId, NodeId)],
) -> Result<()> {
    let invalid = |reason: String| GraphError::InvalidCsr { reason };
    if offsets.first() != Some(&0) {
        return Err(invalid("offsets must be non-empty and start at 0".into()));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(invalid("offsets must be monotone non-decreasing".into()));
    }
    let n = offsets.len() - 1;
    let m = edge_list.len();
    if *offsets.last().expect("non-empty") != slots.len() {
        return Err(invalid(format!(
            "final offset {} does not match slot count {}",
            offsets.last().expect("non-empty"),
            slots.len()
        )));
    }
    if slots.len() != 2 * m {
        return Err(invalid(format!(
            "{} slots cannot represent {m} undirected edges (need {})",
            slots.len(),
            2 * m
        )));
    }
    for &(u, v) in edge_list {
        if u.index() >= n || v.index() >= n {
            return Err(invalid(format!(
                "edge endpoint {:?}-{:?} out of bounds for {n} vertices",
                u, v
            )));
        }
    }
    // Each edge id must occupy exactly the two slots its endpoints
    // own (a self-loop owns both slots at one vertex).
    let mut slots_seen = vec![0u8; m];
    for v in 0..n {
        for &(w, e) in &slots[offsets[v]..offsets[v + 1]] {
            let Some((a, b)) = edge_list.get(e.index()).copied() else {
                return Err(invalid(format!(
                    "slot references unknown edge {:?} (graph has {m} edges)",
                    e
                )));
            };
            let owner = NodeId::new(v);
            let matches = (a == owner && b == w) || (b == owner && a == w);
            if !matches {
                return Err(invalid(format!(
                    "slot ({w:?}, {e:?}) of vertex {owner:?} disagrees with \
                     edge endpoints {a:?}-{b:?}"
                )));
            }
            slots_seen[e.index()] += 1;
        }
    }
    if let Some(e) = slots_seen.iter().position(|&c| c != 2) {
        return Err(invalid(format!(
            "edge {:?} appears on {} slots (expected 2)",
            EdgeId::new(e),
            slots_seen[e]
        )));
    }
    Ok(())
}

// Equality is *content* equality — an owned graph and a borrowed view of
// the same buffers compare equal, which is exactly what mapped-vs-heap
// load tests rely on.
impl PartialEq for UndirectedCsr {
    fn eq(&self, other: &Self) -> bool {
        self.offsets() == other.offsets()
            && self.slots() == other.slots()
            && self.edge_list() == other.edge_list()
    }
}

impl Eq for UndirectedCsr {}

impl fmt::Debug for UndirectedCsr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UndirectedCsr")
            .field("offsets", &self.offsets())
            .field("slots", &self.slots())
            .field("edge_list", &self.edge_list())
            .field("borrowed", &self.is_borrowed())
            .finish()
    }
}

impl From<&EvolvingDigraph> for UndirectedCsr {
    fn from(g: &EvolvingDigraph) -> Self {
        UndirectedCsr::from_digraph(g)
    }
}

/// Iterator over the neighbors of a vertex. Created by
/// [`UndirectedCsr::neighbors`].
#[derive(Debug, Clone)]
pub struct Neighbors<'a> {
    inner: std::slice::Iter<'a, (NodeId, EdgeId)>,
}

impl Iterator for Neighbors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        self.inner.next().map(|&(v, _)| v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for Neighbors<'_> {}

/// Iterator over `(neighbor, edge)` slots of a vertex. Created by
/// [`UndirectedCsr::incident_edges`].
#[derive(Debug, Clone)]
pub struct IncidentEdges<'a> {
    inner: std::slice::Iter<'a, (NodeId, EdgeId)>,
}

impl Iterator for IncidentEdges<'_> {
    type Item = (NodeId, EdgeId);

    fn next(&mut self) -> Option<(NodeId, EdgeId)> {
        self.inner.next().copied()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for IncidentEdges<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> UndirectedCsr {
        UndirectedCsr::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn from_edges_counts() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn degree_sum_is_twice_edges() {
        let g = triangle();
        let sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        assert_eq!(sum, 2 * g.edge_count());
    }

    #[test]
    fn self_loop_has_degree_two_and_two_slots() {
        let g = UndirectedCsr::from_edges(1, [(0, 0)]).unwrap();
        let v = NodeId::new(0);
        assert_eq!(g.degree(v), 2);
        assert_eq!(g.edge_count(), 1);
        let ns: Vec<_> = g.neighbors(v).collect();
        assert_eq!(ns, vec![v, v]);
    }

    #[test]
    fn incident_slot_resolves_neighbors() {
        let g = triangle();
        let v = NodeId::new(0);
        let mut seen: Vec<usize> = (0..g.degree(v))
            .map(|i| g.incident_slot(v, i).unwrap().0.index())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    fn incident_slot_errors() {
        let g = triangle();
        assert!(matches!(
            g.incident_slot(NodeId::new(9), 0),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
        assert!(matches!(
            g.incident_slot(NodeId::new(0), 2),
            Err(GraphError::IncidenceOutOfBounds { .. })
        ));
    }

    #[test]
    fn from_digraph_preserves_edge_ids() {
        let mut d = EvolvingDigraph::new();
        let a = d.add_node();
        let b = d.add_node();
        let c = d.add_node();
        let e0 = d.add_edge(b, a).unwrap();
        let e1 = d.add_edge(c, b).unwrap();
        let g = UndirectedCsr::from_digraph(&d);
        assert_eq!(g.edge_endpoints(e0).unwrap(), (b, a));
        assert_eq!(g.edge_endpoints(e1).unwrap(), (c, b));
        // Slot of a mentions edge e0.
        assert_eq!(g.incident(a), &[(b, e0)]);
    }

    #[test]
    fn parallel_edges_both_visible() {
        let g = UndirectedCsr::from_edges(2, [(0, 1), (0, 1)]).unwrap();
        assert_eq!(g.degree(NodeId::new(0)), 2);
        assert_eq!(g.degree(NodeId::new(1)), 2);
        assert_eq!(g.edge_count(), 2);
        assert!(g.is_adjacent(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn adjacency_checks() {
        let g = UndirectedCsr::from_edges(4, [(0, 1), (1, 2)]).unwrap();
        assert!(g.is_adjacent(NodeId::new(0), NodeId::new(1)));
        assert!(g.is_adjacent(NodeId::new(1), NodeId::new(0)));
        assert!(!g.is_adjacent(NodeId::new(0), NodeId::new(2)));
        assert!(!g.is_adjacent(NodeId::new(3), NodeId::new(0)));
    }

    #[test]
    fn max_degree_ties_to_oldest() {
        let g = UndirectedCsr::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let (v, d) = g.max_degree().unwrap();
        assert_eq!(d, 1);
        assert_eq!(v, NodeId::new(0));
        assert!(UndirectedCsr::from_edges(0, [])
            .unwrap()
            .max_degree()
            .is_none());
    }

    #[test]
    fn from_edges_rejects_out_of_range() {
        assert!(UndirectedCsr::from_edges(2, [(0, 5)]).is_err());
    }

    #[test]
    fn neighbors_exact_size() {
        let g = triangle();
        let it = g.neighbors(NodeId::new(1));
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn shuffle_slots_preserves_structure() {
        use rand::SeedableRng;
        let mut g = UndirectedCsr::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)]).unwrap();
        let before_degrees: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
        let before_edges: Vec<_> = g.edges().collect();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        g.shuffle_slots(&mut rng);
        let after_degrees: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
        assert_eq!(before_degrees, after_degrees);
        assert_eq!(before_edges, g.edges().collect::<Vec<_>>());
        // The slot multiset of each vertex is unchanged.
        let mut slots: Vec<_> = g.incident(NodeId::new(0)).to_vec();
        slots.sort();
        let expect: Vec<(NodeId, EdgeId)> = vec![
            (NodeId::new(1), EdgeId::new(0)),
            (NodeId::new(2), EdgeId::new(1)),
            (NodeId::new(3), EdgeId::new(2)),
            (NodeId::new(4), EdgeId::new(3)),
        ];
        assert_eq!(slots, expect);
    }

    #[test]
    fn shuffle_slots_changes_order_eventually() {
        use rand::SeedableRng;
        let base = UndirectedCsr::from_edges(9, (1..9).map(|i| (0, i))).unwrap();
        let original = base.incident(NodeId::new(0)).to_vec();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let mut changed = false;
        for _ in 0..10 {
            let mut g = base.clone();
            g.shuffle_slots(&mut rng);
            if g.incident(NodeId::new(0)) != original.as_slice() {
                changed = true;
                break;
            }
        }
        assert!(changed, "ten shuffles of 8 slots should change the order");
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = UndirectedCsr::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let keep = [NodeId::new(1), NodeId::new(2), NodeId::new(3)];
        let (sub, map) = g.induced_subgraph(&keep);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2); // 1-2 and 2-3
        assert_eq!(map, vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)]);
    }

    #[test]
    fn induced_subgraph_ignores_duplicates() {
        let g = triangle();
        let keep = [NodeId::new(0), NodeId::new(0), NodeId::new(1)];
        let (sub, map) = g.induced_subgraph(&keep);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(map.len(), 2);
        assert_eq!(sub.edge_count(), 1);
    }

    #[test]
    fn giant_component_extraction() {
        // Triangle plus an isolated edge plus an isolated vertex.
        let g = UndirectedCsr::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4)]).unwrap();
        let (giant, map) = g.giant_component();
        assert_eq!(giant.node_count(), 3);
        assert_eq!(giant.edge_count(), 3);
        assert!(map.iter().all(|v| v.index() <= 2));
    }

    #[test]
    fn raw_parts_roundtrip_preserves_slot_order() {
        use rand::SeedableRng;
        let mut g =
            UndirectedCsr::from_edges(6, [(0, 1), (0, 2), (0, 3), (1, 2), (2, 3), (0, 0)]).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        g.shuffle_slots(&mut rng);
        let (offsets, slots, edges) = g.raw_parts();
        let back = UndirectedCsr::from_raw_parts(offsets.to_vec(), slots.to_vec(), edges.to_vec())
            .unwrap();
        assert_eq!(g, back); // equality covers the exact slot permutation
    }

    #[test]
    fn raw_parts_roundtrip_empty_graph() {
        let g = UndirectedCsr::from_edges(0, []).unwrap();
        let (offsets, slots, edges) = g.raw_parts();
        let back = UndirectedCsr::from_raw_parts(offsets.to_vec(), slots.to_vec(), edges.to_vec())
            .unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn from_raw_parts_rejects_inconsistent_buffers() {
        let g = triangle();
        let (offsets, slots, edges) = g.raw_parts();
        let (offsets, slots, edges) = (offsets.to_vec(), slots.to_vec(), edges.to_vec());

        let bad = UndirectedCsr::from_raw_parts(vec![], slots.clone(), edges.clone());
        assert!(matches!(bad, Err(GraphError::InvalidCsr { .. })));

        let bad = UndirectedCsr::from_raw_parts(vec![0, 2, 1, 6], slots.clone(), edges.clone());
        assert!(matches!(bad, Err(GraphError::InvalidCsr { .. })));

        // Truncated slots: final offset disagrees.
        let bad =
            UndirectedCsr::from_raw_parts(offsets.clone(), slots[..4].to_vec(), edges.clone());
        assert!(matches!(bad, Err(GraphError::InvalidCsr { .. })));

        // Edge list missing an entry every slot still references.
        let bad =
            UndirectedCsr::from_raw_parts(offsets.clone(), slots.clone(), edges[..2].to_vec());
        assert!(matches!(bad, Err(GraphError::InvalidCsr { .. })));

        // A slot whose neighbor contradicts the edge list.
        let mut tampered = slots.clone();
        tampered[0].0 = NodeId::new(0);
        let bad = UndirectedCsr::from_raw_parts(offsets.clone(), tampered, edges.clone());
        assert!(matches!(bad, Err(GraphError::InvalidCsr { .. })));

        // Edge endpoint out of vertex range.
        let mut far = edges.clone();
        far[0] = (NodeId::new(0), NodeId::new(99));
        let bad = UndirectedCsr::from_raw_parts(offsets, slots, far);
        assert!(matches!(bad, Err(GraphError::InvalidCsr { .. })));
    }

    /// Encodes a graph's CSR buffers into an aligned byte region in the
    /// `.nsg` payload shape, plus the matching layout.
    fn region_of(g: &UndirectedCsr) -> (Arc<dyn CsrBytes>, CsrLayout) {
        let (offsets, slots, edge_list) = g.raw_parts();
        let mut bytes = Vec::new();
        for &o in offsets {
            bytes.extend_from_slice(&(o as u64).to_le_bytes());
        }
        for &(v, e) in slots {
            bytes.extend_from_slice(&(v.index() as u32).to_le_bytes());
            bytes.extend_from_slice(&(e.index() as u32).to_le_bytes());
        }
        for &(u, v) in edge_list {
            bytes.extend_from_slice(&(u.index() as u32).to_le_bytes());
            bytes.extend_from_slice(&(v.index() as u32).to_le_bytes());
        }
        let offsets_end = 8 * offsets.len();
        let slots_end = offsets_end + 8 * slots.len();
        let layout = CsrLayout {
            offsets: 0..offsets_end,
            slots: offsets_end..slots_end,
            edge_list: slots_end..bytes.len(),
        };
        (Arc::new(crate::AlignedBytes::from_bytes(&bytes)), layout)
    }

    #[test]
    fn borrowed_view_equals_owned_graph() {
        use rand::SeedableRng;
        let mut g =
            UndirectedCsr::from_edges(6, [(0, 1), (0, 2), (0, 3), (1, 2), (2, 3), (0, 0)]).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        g.shuffle_slots(&mut rng);
        let (region, layout) = region_of(&g);
        let view = UndirectedCsr::from_csr_bytes(region, &layout).unwrap();
        assert!(view.is_borrowed());
        assert!(!g.is_borrowed());
        assert_eq!(view, g, "content equality across storage kinds");
        // Every accessor agrees with the owned original.
        for v in g.nodes() {
            assert_eq!(view.degree(v), g.degree(v));
            assert_eq!(view.incident(v), g.incident(v));
        }
        assert_eq!(
            view.edges().collect::<Vec<_>>(),
            g.edges().collect::<Vec<_>>()
        );
        assert_eq!(view.max_degree(), g.max_degree());
        // Clones of a borrowed view share the region and stay borrowed.
        let clone = view.clone();
        assert!(clone.is_borrowed());
        assert_eq!(clone, g);
    }

    #[test]
    fn borrowed_view_detaches_on_mutation() {
        use rand::SeedableRng;
        let g = UndirectedCsr::from_edges(9, (1..9).map(|i| (0, i))).unwrap();
        let (region, layout) = region_of(&g);
        let mut view = UndirectedCsr::from_csr_bytes(Arc::clone(&region), &layout).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        view.shuffle_slots(&mut rng);
        assert!(!view.is_borrowed(), "mutation must copy out of the region");
        // The region itself is untouched: a fresh view still matches the
        // original slot order.
        let fresh = UndirectedCsr::from_csr_bytes(region, &layout).unwrap();
        assert_eq!(fresh, g);
        // Explicit detach is also available.
        let (region, layout) = region_of(&g);
        let mut view = UndirectedCsr::from_csr_bytes(region, &layout).unwrap();
        view.make_owned();
        assert!(!view.is_borrowed());
        assert_eq!(view, g);
    }

    #[test]
    fn from_csr_bytes_rejects_structural_corruption() {
        let g = triangle();
        let (region, layout) = region_of(&g);
        // Valid region, but a layout that swaps slots and edge_list has
        // the wrong element counts.
        let swapped = CsrLayout {
            offsets: layout.offsets.clone(),
            slots: layout.edge_list.clone(),
            edge_list: layout.slots.clone(),
        };
        assert!(matches!(
            UndirectedCsr::from_csr_bytes(Arc::clone(&region), &swapped),
            Err(GraphError::InvalidCsr { .. })
        ));
        // Out-of-bounds layout.
        let far = CsrLayout {
            offsets: layout.offsets.clone(),
            slots: layout.slots.clone(),
            edge_list: layout.edge_list.start..layout.edge_list.end + 8,
        };
        assert!(matches!(
            UndirectedCsr::from_csr_bytes(region, &far),
            Err(GraphError::InvalidCsr { .. })
        ));
    }

    #[test]
    fn giant_component_of_empty_graph() {
        let g = UndirectedCsr::from_edges(0, []).unwrap();
        let (giant, map) = g.giant_component();
        assert_eq!(giant.node_count(), 0);
        assert!(map.is_empty());
    }
}
