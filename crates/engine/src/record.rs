//! Structured run records: JSON Lines and CSV alongside pretty tables.
//!
//! A run produces a stream of **cell records** — one JSON object per
//! measured cell, with deterministic content (params, seed, aggregates)
//! — followed by a single **run record** carrying the volatile envelope:
//! wall time, worker threads, git describe. Keeping the volatile fields
//! out of the cell records is what makes "same seed ⇒ byte-identical
//! cell lines, regardless of `--threads`" testable; the determinism
//! suite compares everything but the `"type":"run"` footer.

use crate::json::JsonValue;
use crate::options::{CliOptions, OutputFormat};
use nonsearch_obs::{Metrics, PhaseTimes, ResourceSample};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The JSONL `type` tag of per-cell records.
pub const CELL_TYPE: &str = "cell";
/// The JSONL `type` tag of the run footer.
pub const RUN_TYPE: &str = "run";
/// The JSONL `type` tag of per-cell throughput records (`--profile`).
pub const PROFILE_TYPE: &str = "profile";
/// The JSONL `type` tag of per-cell engine-metrics records.
pub const METRICS_TYPE: &str = "metrics";
/// The JSONL `type` tag of per-cell resource records (phase timers,
/// allocation counts, `/proc` samples). Wall-clock data: volatile by
/// definition, JSONL-only, never part of determinism-gated lines.
pub const RESOURCE_TYPE: &str = "resource";
/// The JSONL `type` tag of injected-fault records emitted by chaos runs
/// (`xp chaos`): one per fault a seeded plan injected, carrying the
/// trial/attempt (or file) it hit and how the run absorbed it. Fault
/// records describe the *perturbation*, never the measurements, so they
/// are JSONL-only and determinism gates keep filtering on
/// `"type":"cell"`.
pub const FAULT_TYPE: &str = "fault";
/// The JSONL `type` tag of `xp lint` static-analysis findings (one per
/// flagged source line, waived or not).
pub const DIAGNOSTIC_TYPE: &str = "diagnostic";
/// The JSONL `type` tag of the `xp lint` report footer (file and
/// finding counts for the whole pass).
pub const LINT_TYPE: &str = "lint";

/// Sink for one experiment run's structured records.
///
/// Created inert (no files) when the options carry no `--out`; every
/// method is then a cheap no-op, so experiments emit records
/// unconditionally.
pub struct RunWriter {
    experiment: String,
    quick: bool,
    /// Resolved worker ceiling recorded in the footer (`--threads`, with
    /// `0` resolved to the core count). Individual cells may use fewer
    /// workers — the engine also caps at each cell's trial count.
    threads: usize,
    jsonl: Option<(PathBuf, BufWriter<File>)>,
    csv: Option<CsvSink>,
    cells: usize,
    profiles: usize,
    metrics: usize,
    resources: usize,
    faults: usize,
    start: Instant,
}

struct CsvSink {
    path: PathBuf,
    writer: BufWriter<File>,
    header: Option<Vec<String>>,
}

/// What a finished run wrote, for the CLI's closing status line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// Cell records written.
    pub cells: usize,
    /// Wall-clock duration of the run in milliseconds.
    pub wall_ms: u128,
    /// Files written (empty when the writer was inert).
    pub paths: Vec<PathBuf>,
}

impl RunWriter {
    /// Opens the sinks requested by `options` for `experiment`.
    pub fn create(experiment: &str, options: &CliOptions) -> io::Result<RunWriter> {
        let mut jsonl = None;
        let mut csv = None;
        if let Some(out) = &options.out {
            match options.format {
                OutputFormat::Jsonl => jsonl = Some(open(out)?),
                OutputFormat::Csv => csv = Some(CsvSink::open(out)?),
                OutputFormat::Both => {
                    // If --out already ends in .csv, with_extension is a
                    // no-op and both sinks would clobber one file; move
                    // the JSONL stream to a .jsonl sibling instead.
                    let csv_path = out.with_extension("csv");
                    let jsonl_path = if csv_path == *out {
                        out.with_extension("jsonl")
                    } else {
                        out.clone()
                    };
                    jsonl = Some(open(&jsonl_path)?);
                    csv = Some(CsvSink::open(&csv_path)?);
                }
            }
        }
        Ok(RunWriter {
            experiment: experiment.to_string(),
            quick: options.quick,
            threads: options.resolved_threads(),
            jsonl,
            csv,
            cells: 0,
            profiles: 0,
            metrics: 0,
            resources: 0,
            faults: 0,
            start: Instant::now(),
        })
    }

    /// An inert writer (no `--out`); useful in tests and library callers.
    pub fn sink(experiment: &str) -> RunWriter {
        RunWriter::create(experiment, &CliOptions::default()).expect("inert writer cannot fail")
    }

    /// `true` when at least one structured sink is open.
    pub fn is_active(&self) -> bool {
        self.jsonl.is_some() || self.csv.is_some()
    }

    /// Writes one cell record. `fields` keep their order; `type` and
    /// `experiment` are prepended. Within one run every cell should use
    /// the same key set, so the CSV rows line up under one header.
    pub fn record_cell(&mut self, fields: Vec<(&str, JsonValue)>) -> io::Result<()> {
        self.record_cell_degraded(fields, false)
    }

    /// [`record_cell`](RunWriter::record_cell) for cells that may have
    /// been abandoned by the chaos watchdog: when `degraded` is true a
    /// trailing `"degraded":true` field marks the record as a partial
    /// aggregate. Healthy cells carry no such field, so fault-free runs
    /// emit byte-identical lines through either method.
    pub fn record_cell_degraded(
        &mut self,
        fields: Vec<(&str, JsonValue)>,
        degraded: bool,
    ) -> io::Result<()> {
        self.cells += 1;
        if !self.is_active() {
            return Ok(());
        }
        let mut pairs: Vec<(String, JsonValue)> = Vec::with_capacity(fields.len() + 3);
        pairs.push(("type".into(), JsonValue::from(CELL_TYPE)));
        pairs.push(("experiment".into(), JsonValue::Str(self.experiment.clone())));
        pairs.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
        if degraded {
            pairs.push(("degraded".into(), JsonValue::from(true)));
        }
        if let Some((_, w)) = &mut self.jsonl {
            writeln!(w, "{}", JsonValue::Object(pairs.clone()))?;
        }
        if let Some(csv) = &mut self.csv {
            csv.row(&pairs)?;
        }
        Ok(())
    }

    /// Writes one throughput record (`--profile`). Profile records carry
    /// volatile timing, so they go to the JSONL stream only — never to
    /// CSV, whose single header is shaped by the deterministic cell rows
    /// — and determinism checks must filter on `"type":"cell"` as they
    /// already do.
    pub fn record_profile(&mut self, fields: Vec<(&str, JsonValue)>) -> io::Result<()> {
        self.profiles += 1;
        if let Some((_, w)) = &mut self.jsonl {
            let mut pairs: Vec<(String, JsonValue)> = Vec::with_capacity(fields.len() + 2);
            pairs.push(("type".into(), JsonValue::from(PROFILE_TYPE)));
            pairs.push(("experiment".into(), JsonValue::Str(self.experiment.clone())));
            pairs.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
            writeln!(w, "{}", JsonValue::Object(pairs))?;
        }
        Ok(())
    }

    /// Writes one injected-fault record (`xp chaos`). Like profile
    /// records these carry run-specific perturbation data — which
    /// trial/attempt or file a seeded fault hit and how it was absorbed
    /// — so they ride the JSONL stream only and determinism `cmp` gates
    /// keep filtering on `"type":"cell"`.
    pub fn record_fault(&mut self, fields: Vec<(&str, JsonValue)>) -> io::Result<()> {
        self.faults += 1;
        if let Some((_, w)) = &mut self.jsonl {
            let mut pairs: Vec<(String, JsonValue)> = Vec::with_capacity(fields.len() + 2);
            pairs.push(("type".into(), JsonValue::from(FAULT_TYPE)));
            pairs.push(("experiment".into(), JsonValue::Str(self.experiment.clone())));
            pairs.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
            writeln!(w, "{}", JsonValue::Object(pairs))?;
        }
        Ok(())
    }

    /// Writes one engine-metrics record: the identifying `fields` (model,
    /// size, …) followed by [`metrics_fields`]`(metrics)`. The counter
    /// values are deterministic (bit-identical for any `--threads`), but
    /// like profile records they ride the JSONL stream only, so the CSV
    /// header stays shaped by the cell rows and the determinism `cmp`
    /// gates keep filtering on `"type":"cell"`.
    pub fn record_metrics(
        &mut self,
        fields: Vec<(&str, JsonValue)>,
        metrics: &Metrics,
    ) -> io::Result<()> {
        self.metrics += 1;
        if let Some((_, w)) = &mut self.jsonl {
            let mut pairs: Vec<(String, JsonValue)> = Vec::with_capacity(fields.len() + 9);
            pairs.push(("type".into(), JsonValue::from(METRICS_TYPE)));
            pairs.push(("experiment".into(), JsonValue::Str(self.experiment.clone())));
            pairs.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
            pairs.extend(
                metrics_fields(metrics)
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v)),
            );
            writeln!(w, "{}", JsonValue::Object(pairs))?;
        }
        Ok(())
    }

    /// Writes one resource record: the identifying `fields` (model,
    /// size, …) followed by [`resource_fields`]. Resource records carry
    /// wall-clock phase timers and `/proc` samples — volatile by
    /// definition — so like profiles they ride the JSONL stream only
    /// and determinism `cmp` gates keep filtering on `"type":"cell"`.
    pub fn record_resource(
        &mut self,
        fields: Vec<(&str, JsonValue)>,
        wall_ms: u64,
        workers: usize,
        phases: &PhaseTimes,
        allocations: u64,
        sample: &ResourceSample,
    ) -> io::Result<()> {
        self.resources += 1;
        if let Some((_, w)) = &mut self.jsonl {
            let mut pairs: Vec<(String, JsonValue)> = Vec::with_capacity(fields.len() + 14);
            pairs.push(("type".into(), JsonValue::from(RESOURCE_TYPE)));
            pairs.push(("experiment".into(), JsonValue::Str(self.experiment.clone())));
            pairs.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
            pairs.extend(
                resource_fields(wall_ms, workers, phases, allocations, sample)
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v)),
            );
            writeln!(w, "{}", JsonValue::Object(pairs))?;
        }
        Ok(())
    }

    /// Writes the run footer (seed, quick, threads, git describe, wall
    /// time, cell count), flushes, and reports what was written.
    pub fn finish(mut self, seed: u64) -> io::Result<RunSummary> {
        let wall_ms = self.start.elapsed().as_millis();
        let mut paths = Vec::new();
        if let Some((path, mut w)) = self.jsonl.take() {
            let footer = JsonValue::object(vec![
                ("type", JsonValue::from(RUN_TYPE)),
                ("experiment", JsonValue::Str(self.experiment.clone())),
                ("seed", JsonValue::from(seed)),
                ("quick", JsonValue::from(self.quick)),
                ("threads", JsonValue::from(self.threads)),
                ("git", JsonValue::from(git_describe())),
                ("wall_ms", JsonValue::from(wall_ms as u64)),
                ("cells", JsonValue::from(self.cells)),
                ("profiles", JsonValue::from(self.profiles)),
                ("metrics", JsonValue::from(self.metrics)),
                ("resources", JsonValue::from(self.resources)),
                ("faults", JsonValue::from(self.faults)),
            ]);
            writeln!(w, "{footer}")?;
            w.flush()?;
            paths.push(path);
        }
        if let Some(mut csv) = self.csv.take() {
            csv.writer.flush()?;
            paths.push(csv.path);
        }
        Ok(RunSummary {
            cells: self.cells,
            wall_ms,
            paths,
        })
    }
}

fn open(path: &Path) -> io::Result<(PathBuf, BufWriter<File>)> {
    Ok((path.to_path_buf(), BufWriter::new(File::create(path)?)))
}

impl CsvSink {
    fn open(path: &Path) -> io::Result<CsvSink> {
        let (path, writer) = open(path)?;
        Ok(CsvSink {
            path,
            writer,
            header: None,
        })
    }

    fn row(&mut self, pairs: &[(String, JsonValue)]) -> io::Result<()> {
        if self.header.is_none() {
            let keys: Vec<String> = pairs.iter().map(|(k, _)| k.clone()).collect();
            let line: Vec<String> = keys.iter().map(|k| csv_escape(k)).collect();
            writeln!(self.writer, "{}", line.join(","))?;
            self.header = Some(keys);
        }
        let header = self.header.as_ref().expect("header just ensured");
        let line: Vec<String> = header
            .iter()
            .map(|key| {
                pairs
                    .iter()
                    .find(|(k, _)| k == key)
                    .map_or(String::new(), |(_, v)| csv_cell(v))
            })
            .collect();
        writeln!(self.writer, "{}", line.join(","))
    }
}

fn csv_cell(value: &JsonValue) -> String {
    match value {
        JsonValue::Null => String::new(),
        JsonValue::Str(s) => csv_escape(s),
        other => csv_escape(&other.to_string()),
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// The canonical JSON field set of a [`Metrics`] bundle, in a fixed
/// order: the nine counters (the six work counters, then the three
/// chaos counters — `faults_injected`, `trials_retried`,
/// `trials_skipped`, all zero in fault-free runs), then
/// `hist_requests_log2` — the per-trial request-count histogram in its
/// trimmed form (bucket `0` counts zero-request trials; bucket `k ≥ 1`
/// counts trials with total requests in `[2^(k−1), 2^k)`). `xp
/// validate` checks the bucket counts sum to `trials`.
pub fn metrics_fields(metrics: &Metrics) -> Vec<(&'static str, JsonValue)> {
    vec![
        ("trials", JsonValue::from(metrics.trials)),
        ("requests", JsonValue::from(metrics.requests)),
        ("discoveries", JsonValue::from(metrics.discoveries)),
        (
            "edge_resolutions",
            JsonValue::from(metrics.edge_resolutions),
        ),
        (
            "frontier_rescans",
            JsonValue::from(metrics.frontier_rescans),
        ),
        ("scratch_resets", JsonValue::from(metrics.scratch_resets)),
        ("faults_injected", JsonValue::from(metrics.faults_injected)),
        ("trials_retried", JsonValue::from(metrics.trials_retried)),
        ("trials_skipped", JsonValue::from(metrics.trials_skipped)),
        (
            "hist_requests_log2",
            JsonValue::Array(
                metrics
                    .trial_requests
                    .trimmed()
                    .iter()
                    .map(|&count| JsonValue::from(count))
                    .collect(),
            ),
        ),
    ]
}

/// The canonical JSON field set of a resource record's payload, in a
/// fixed order: cell wall time and worker count (the envelope the
/// phase sums are bounded by — per-worker busy time can total up to
/// `wall_ms × (workers + 1)`, the `+ 1` being the consumer thread that
/// owns the merge phase), the five phase timers, the heap-allocation
/// count harvested across trial bodies, and the `/proc` process
/// sample. `xp validate` checks these bounds.
pub fn resource_fields(
    wall_ms: u64,
    workers: usize,
    phases: &PhaseTimes,
    allocations: u64,
    sample: &ResourceSample,
) -> Vec<(&'static str, JsonValue)> {
    let mut fields = vec![
        ("wall_ms", JsonValue::from(wall_ms)),
        ("workers", JsonValue::from(workers)),
    ];
    fields.extend(
        phases
            .named()
            .into_iter()
            .map(|(name, ns)| (name, JsonValue::from(ns))),
    );
    fields.extend([
        ("allocations", JsonValue::from(allocations)),
        ("peak_rss_bytes", JsonValue::from(sample.peak_rss_bytes)),
        ("minor_faults", JsonValue::from(sample.minor_faults)),
        ("major_faults", JsonValue::from(sample.major_faults)),
        (
            "voluntary_ctx_switches",
            JsonValue::from(sample.voluntary_ctx_switches),
        ),
    ]);
    fields
}

/// `git describe --always --dirty`, or `"unknown"` outside a work tree.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let unique = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "nonsearch_engine_{}_{}_{tag}",
            std::process::id(),
            unique
        ))
    }

    fn demo_fields(n: usize) -> Vec<(&'static str, JsonValue)> {
        vec![
            ("n", JsonValue::from(n)),
            ("mean", JsonValue::from(1.5 * n as f64)),
            ("label, quoted", JsonValue::from("a \"b\",c")),
        ]
    }

    #[test]
    fn inert_writer_counts_but_writes_nothing() {
        let mut w = RunWriter::sink("demo");
        assert!(!w.is_active());
        w.record_cell(demo_fields(1)).unwrap();
        let summary = w.finish(7).unwrap();
        assert_eq!(summary.cells, 1);
        assert!(summary.paths.is_empty());
    }

    #[test]
    fn jsonl_records_parse_and_footer_carries_meta() {
        let path = temp_path("run.jsonl");
        let options = CliOptions {
            out: Some(path.clone()),
            threads: 3,
            quick: true,
            ..CliOptions::default()
        };
        let mut w = RunWriter::create("demo", &options).unwrap();
        w.record_cell(demo_fields(128)).unwrap();
        w.record_cell(demo_fields(256)).unwrap();
        let summary = w.finish(0xE1).unwrap();
        assert_eq!(summary.cells, 2);
        assert_eq!(summary.paths, vec![path.clone()]);

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            json::parse(line).unwrap();
        }
        let first = json::parse(lines[0]).unwrap();
        assert_eq!(first.get("type").and_then(|v| v.as_str()), Some(CELL_TYPE));
        assert_eq!(
            first.get("experiment").and_then(|v| v.as_str()),
            Some("demo")
        );
        assert_eq!(first.get("n").and_then(|v| v.as_f64()), Some(128.0));
        let footer = json::parse(lines[2]).unwrap();
        assert_eq!(footer.get("type").and_then(|v| v.as_str()), Some(RUN_TYPE));
        assert_eq!(footer.get("seed").and_then(|v| v.as_f64()), Some(225.0));
        assert_eq!(footer.get("cells").and_then(|v| v.as_f64()), Some(2.0));
        assert_eq!(footer.get("threads").and_then(|v| v.as_f64()), Some(3.0));
        assert!(footer.get("git").is_some());
        assert!(footer.get("wall_ms").is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn both_formats_write_csv_sibling() {
        let path = temp_path("run.jsonl");
        let options = CliOptions {
            out: Some(path.clone()),
            format: OutputFormat::Both,
            ..CliOptions::default()
        };
        let mut w = RunWriter::create("demo", &options).unwrap();
        w.record_cell(demo_fields(64)).unwrap();
        let summary = w.finish(1).unwrap();
        let csv_path = path.with_extension("csv");
        assert_eq!(summary.paths, vec![path.clone(), csv_path.clone()]);

        let csv = std::fs::read_to_string(&csv_path).unwrap();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "type,experiment,n,mean,\"label, quoted\""
        );
        assert_eq!(lines.next().unwrap(), "cell,demo,64,96.0,\"a \"\"b\"\",c\"");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&csv_path).ok();
    }

    #[test]
    fn both_with_csv_out_path_does_not_clobber() {
        let path = temp_path("run.csv");
        let options = CliOptions {
            out: Some(path.clone()),
            format: OutputFormat::Both,
            ..CliOptions::default()
        };
        let mut w = RunWriter::create("demo", &options).unwrap();
        w.record_cell(vec![("n", JsonValue::from(1usize))]).unwrap();
        let summary = w.finish(0).unwrap();
        let jsonl_path = path.with_extension("jsonl");
        assert_eq!(summary.paths, vec![jsonl_path.clone(), path.clone()]);
        // Both files exist with their own, intact contents.
        let jsonl = std::fs::read_to_string(&jsonl_path).unwrap();
        assert_eq!(jsonl.lines().count(), 2);
        for line in jsonl.lines() {
            json::parse(line).unwrap();
        }
        let csv = std::fs::read_to_string(&path).unwrap();
        assert!(csv.starts_with("type,experiment,n"));
        assert_eq!(csv.lines().count(), 2);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&jsonl_path).ok();
    }

    #[test]
    fn csv_only_uses_out_path_directly() {
        let path = temp_path("run.csv");
        let options = CliOptions {
            out: Some(path.clone()),
            format: OutputFormat::Csv,
            ..CliOptions::default()
        };
        let mut w = RunWriter::create("demo", &options).unwrap();
        w.record_cell(vec![("n", JsonValue::from(1usize))]).unwrap();
        let summary = w.finish(0).unwrap();
        assert_eq!(summary.paths, vec![path.clone()]);
        let csv = std::fs::read_to_string(&path).unwrap();
        assert_eq!(csv.lines().count(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn profile_records_are_jsonl_only() {
        let path = temp_path("prof.jsonl");
        let options = CliOptions {
            out: Some(path.clone()),
            format: OutputFormat::Both,
            ..CliOptions::default()
        };
        let mut w = RunWriter::create("demo", &options).unwrap();
        w.record_cell(demo_fields(64)).unwrap();
        w.record_profile(vec![
            ("n", JsonValue::from(64usize)),
            ("requests_per_sec", JsonValue::from(1.25e6)),
        ])
        .unwrap();
        w.finish(1).unwrap();

        let jsonl = std::fs::read_to_string(&path).unwrap();
        let profile_line = jsonl
            .lines()
            .find(|l| l.contains("\"type\":\"profile\""))
            .expect("profile record in JSONL");
        let parsed = json::parse(profile_line).unwrap();
        assert_eq!(
            parsed.get("type").and_then(|v| v.as_str()),
            Some(PROFILE_TYPE)
        );
        assert_eq!(
            parsed.get("requests_per_sec").and_then(|v| v.as_f64()),
            Some(1.25e6)
        );
        let footer = json::parse(jsonl.lines().last().unwrap()).unwrap();
        assert_eq!(footer.get("profiles").and_then(|v| v.as_f64()), Some(1.0));
        // The CSV sibling keeps its single cell-shaped header: no
        // profile rows leak into it.
        let csv_path = path.with_extension("csv");
        let csv = std::fs::read_to_string(&csv_path).unwrap();
        assert_eq!(csv.lines().count(), 2);
        assert!(!csv.contains("profile"));
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&csv_path).ok();
    }

    #[test]
    fn fault_records_are_jsonl_only_and_counted() {
        let path = temp_path("fault.jsonl");
        let options = CliOptions {
            out: Some(path.clone()),
            format: OutputFormat::Both,
            ..CliOptions::default()
        };
        let mut w = RunWriter::create("demo", &options).unwrap();
        w.record_cell(demo_fields(64)).unwrap();
        w.record_fault(vec![
            ("kind", JsonValue::from("panic")),
            ("trial", JsonValue::from(3usize)),
            ("attempt", JsonValue::from(0usize)),
            ("outcome", JsonValue::from("retried")),
        ])
        .unwrap();
        w.finish(1).unwrap();

        let jsonl = std::fs::read_to_string(&path).unwrap();
        let line = jsonl
            .lines()
            .find(|l| l.contains("\"type\":\"fault\""))
            .expect("fault record in JSONL");
        let parsed = json::parse(line).unwrap();
        assert_eq!(
            parsed.get("type").and_then(|v| v.as_str()),
            Some(FAULT_TYPE)
        );
        assert_eq!(parsed.get("kind").and_then(|v| v.as_str()), Some("panic"));
        assert_eq!(parsed.get("trial").and_then(|v| v.as_f64()), Some(3.0));
        let footer = json::parse(jsonl.lines().last().unwrap()).unwrap();
        assert_eq!(footer.get("faults").and_then(|v| v.as_f64()), Some(1.0));
        // No fault rows leak into the CSV sibling.
        let csv_path = path.with_extension("csv");
        let csv = std::fs::read_to_string(&csv_path).unwrap();
        assert_eq!(csv.lines().count(), 2);
        assert!(!csv.contains("fault"));
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&csv_path).ok();
    }

    #[test]
    fn degraded_cells_carry_the_flag_and_healthy_cells_do_not() {
        let path = temp_path("degraded.jsonl");
        let options = CliOptions {
            out: Some(path.clone()),
            ..CliOptions::default()
        };
        let mut w = RunWriter::create("demo", &options).unwrap();
        w.record_cell_degraded(demo_fields(64), false).unwrap();
        w.record_cell_degraded(demo_fields(128), true).unwrap();
        w.finish(1).unwrap();

        let jsonl = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = jsonl.lines().collect();
        let healthy = json::parse(lines[0]).unwrap();
        assert!(healthy.get("degraded").is_none(), "healthy cell flagged");
        let degraded = json::parse(lines[1]).unwrap();
        assert_eq!(
            degraded.get("degraded").and_then(|v| v.as_bool()),
            Some(true)
        );
        let footer = json::parse(lines[2]).unwrap();
        assert_eq!(footer.get("cells").and_then(|v| v.as_f64()), Some(2.0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn metrics_records_are_jsonl_only_and_counted() {
        let path = temp_path("metrics.jsonl");
        let options = CliOptions {
            out: Some(path.clone()),
            format: OutputFormat::Both,
            ..CliOptions::default()
        };
        let mut w = RunWriter::create("demo", &options).unwrap();
        w.record_cell(demo_fields(64)).unwrap();
        let mut m = Metrics::new();
        m.trials = 2;
        m.requests = 100;
        m.observe_trial_requests(60);
        m.observe_trial_requests(40);
        w.record_metrics(vec![("n", JsonValue::from(64usize))], &m)
            .unwrap();
        w.finish(1).unwrap();

        let jsonl = std::fs::read_to_string(&path).unwrap();
        let line = jsonl
            .lines()
            .find(|l| l.contains("\"type\":\"metrics\""))
            .expect("metrics record in JSONL");
        let parsed = json::parse(line).unwrap();
        assert_eq!(
            parsed.get("type").and_then(|v| v.as_str()),
            Some(METRICS_TYPE)
        );
        assert_eq!(parsed.get("n").and_then(|v| v.as_f64()), Some(64.0));
        assert_eq!(parsed.get("trials").and_then(|v| v.as_f64()), Some(2.0));
        assert_eq!(parsed.get("requests").and_then(|v| v.as_f64()), Some(100.0));
        // Both samples land in bucket 6 ([32, 64)); the trimmed array
        // covers buckets 0..=6 and its counts sum to the trial count.
        let hist = parsed
            .get("hist_requests_log2")
            .and_then(|v| v.as_array())
            .expect("histogram array");
        let total: f64 = hist.iter().filter_map(|v| v.as_f64()).sum();
        assert_eq!(total, 2.0);
        assert_eq!(hist.len(), 7);
        let footer = json::parse(jsonl.lines().last().unwrap()).unwrap();
        assert_eq!(footer.get("metrics").and_then(|v| v.as_f64()), Some(1.0));
        // No metrics rows leak into the CSV sibling.
        let csv_path = path.with_extension("csv");
        let csv = std::fs::read_to_string(&csv_path).unwrap();
        assert_eq!(csv.lines().count(), 2);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&csv_path).ok();
    }

    #[test]
    fn resource_records_are_jsonl_only_and_counted() {
        let path = temp_path("resource.jsonl");
        let options = CliOptions {
            out: Some(path.clone()),
            format: OutputFormat::Both,
            ..CliOptions::default()
        };
        let mut w = RunWriter::create("demo", &options).unwrap();
        w.record_cell(demo_fields(64)).unwrap();
        let phases = PhaseTimes {
            generate_ns: 1_000,
            search_ns: 5_000,
            harvest_ns: 100,
            merge_ns: 50,
            ..PhaseTimes::new()
        };
        let sample = ResourceSample {
            peak_rss_bytes: 4096,
            minor_faults: 10,
            major_faults: 1,
            voluntary_ctx_switches: 3,
        };
        w.record_resource(
            vec![("n", JsonValue::from(64usize))],
            12,
            4,
            &phases,
            7,
            &sample,
        )
        .unwrap();
        w.finish(1).unwrap();

        let jsonl = std::fs::read_to_string(&path).unwrap();
        let line = jsonl
            .lines()
            .find(|l| l.contains("\"type\":\"resource\""))
            .expect("resource record in JSONL");
        let parsed = json::parse(line).unwrap();
        assert_eq!(
            parsed.get("type").and_then(|v| v.as_str()),
            Some(RESOURCE_TYPE)
        );
        assert_eq!(parsed.get("n").and_then(|v| v.as_f64()), Some(64.0));
        assert_eq!(parsed.get("wall_ms").and_then(|v| v.as_f64()), Some(12.0));
        assert_eq!(parsed.get("workers").and_then(|v| v.as_f64()), Some(4.0));
        assert_eq!(
            parsed.get("phase_search_ns").and_then(|v| v.as_f64()),
            Some(5000.0)
        );
        assert_eq!(
            parsed.get("phase_load_ns").and_then(|v| v.as_f64()),
            Some(0.0)
        );
        assert_eq!(
            parsed.get("allocations").and_then(|v| v.as_f64()),
            Some(7.0)
        );
        assert_eq!(
            parsed.get("peak_rss_bytes").and_then(|v| v.as_f64()),
            Some(4096.0)
        );
        let footer = json::parse(jsonl.lines().last().unwrap()).unwrap();
        assert_eq!(footer.get("resources").and_then(|v| v.as_f64()), Some(1.0));
        // No resource rows leak into the CSV sibling.
        let csv_path = path.with_extension("csv");
        let csv = std::fs::read_to_string(&csv_path).unwrap();
        assert_eq!(csv.lines().count(), 2);
        assert!(!csv.contains("resource"));
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&csv_path).ok();
    }

    #[test]
    fn git_describe_is_nonempty() {
        assert!(!git_describe().is_empty());
    }
}
