//! E1 — Theorem 1, weak model: any local search for vertex `n` in the
//! (merged) Móri model needs `Ω(n^{1/2})` expected requests.
//!
//! Thin wrapper over the registered `xp theorem1-weak` experiment; the
//! implementation lives in `nonsearch_bench::experiments`.

fn main() {
    nonsearch_bench::experiments::run_legacy("theorem1-weak");
}
