//! The deterministic parallel Monte-Carlo trial runner.
//!
//! A *cell* is one experimental condition (model × size × searcher ×
//! policy); measuring it means running `trials` independent repetitions
//! and aggregating. The runner shards trials across scoped worker
//! threads while keeping the result **bit-identical for any worker
//! count**, because both sources of nondeterminism are pinned down:
//!
//! * **Randomness** — trial `t` always draws from
//!   [`trial_seeds`]`(seeds, t)`, a [`SeedSequence`] derived from the
//!   trial index alone. Which worker runs the trial is irrelevant.
//! * **Aggregation order** — workers stream `(trial, measurement)` pairs
//!   through a channel to a consumer that holds a small reorder buffer
//!   and folds measurements into [`StreamingStats`] in strict trial
//!   order. No per-trial `Vec` of samples is ever materialized, and a
//!   backpressure window stops workers from racing more than
//!   O(workers) trials past the fold frontier — so even a pathological
//!   straggler trial keeps memory at O(window), not O(trials).

use crate::faults::{FailurePolicy, FaultInjection, InjectedFault};
use nonsearch_analysis::StreamingStats;
use nonsearch_generators::SeedSequence;
use nonsearch_obs::{elapsed_ns, Metrics, PhaseTimes};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Everything one trial reports back besides its lane measurements:
/// work counters, phase timers, and heap-allocation counts — the
/// payload of the observed runner seam ([`run_lanes_observed`]).
///
/// Like [`Metrics`] it is plain `Copy` data merged by field-wise
/// addition in strict trial order. The `metrics` half is exact and
/// deterministic; `phases` and `allocations` are wall-clock /
/// environment data that vary run to run and must only ever ride
/// volatile (`"type":"resource"`) record lines.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TrialObs {
    /// Deterministic work counters (merged bit-identically).
    pub metrics: Metrics,
    /// Nanosecond phase timers (volatile; per-worker busy time).
    pub phases: PhaseTimes,
    /// Heap allocations during trial bodies, harvested from the
    /// per-thread `nonsearch_alloc_counter` — zero unless the binary
    /// installs the counting allocator.
    pub allocations: u64,
    /// Set when the cell's watchdog deadline fired and the run was
    /// abandoned gracefully: the aggregates cover only the strict
    /// prefix of trials folded before the deadline. Always `false`
    /// unless a fault bundle with a `cell_deadline_ms` was installed
    /// (see [`crate::install_faults`]).
    pub degraded: bool,
}

impl TrialObs {
    /// An all-zero bundle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds every counter, phase, and allocation of `other` into `self`
    /// (and ORs the degraded flag: a merge of any degraded bundle is
    /// degraded).
    pub fn merge(&mut self, other: &TrialObs) {
        self.metrics.merge(&other.metrics);
        self.phases.merge(&other.phases);
        self.allocations += other.allocations;
        self.degraded |= other.degraded;
    }
}

/// One trial's contribution to a lane: a scalar measurement plus a
/// success flag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialMeasure {
    /// The measured quantity (for searches: the request count).
    pub value: f64,
    /// Whether the trial counts as a success (for searches: target found
    /// within budget).
    pub success: bool,
}

impl TrialMeasure {
    /// Convenience constructor from a request count and a found flag.
    pub fn new(value: f64, success: bool) -> TrialMeasure {
        TrialMeasure { value, success }
    }
}

/// The streaming aggregate of one lane of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LaneAggregate {
    /// Moments of the measured values.
    pub stats: StreamingStats,
    /// How many trials succeeded.
    pub successes: u64,
}

impl LaneAggregate {
    /// Number of trials aggregated.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Mean measurement.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// 95% CI half-width of the mean.
    pub fn ci95(&self) -> f64 {
        self.stats.ci95_half_width()
    }

    /// Fraction of successful trials (`0.0` when empty).
    pub fn success_rate(&self) -> f64 {
        if self.stats.is_empty() {
            0.0
        } else {
            self.successes as f64 / self.stats.count() as f64
        }
    }

    fn push(&mut self, m: TrialMeasure) {
        self.stats.push(m.value);
        self.successes += m.success as u64;
    }
}

/// The canonical per-trial seed derivation: trial `t` of a cell rooted
/// at `seeds` draws from `seeds.subsequence(t)`.
///
/// This matches what the pre-engine sequential loops did, so ported
/// experiments reproduce their historical numbers; and because it
/// depends only on the trial index, work-stealing cannot perturb any
/// stream (the engine's proptest suite asserts the derived roots never
/// collide across a sweep's trials).
pub fn trial_seeds(seeds: &SeedSequence, trial: usize) -> SeedSequence {
    seeds.subsequence(trial as u64)
}

/// Runs `trials` repetitions of a multi-lane cell on `threads` workers
/// (0 = all cores) and returns one aggregate per lane.
///
/// `trial_fn(trial, seeds)` must return exactly `lanes` measurements —
/// one per lane, e.g. one per searcher raced on the trial's sampled
/// graph. Aggregates are bit-identical for any thread count.
///
/// # Panics
///
/// Panics if `trial_fn` returns a lane count other than `lanes`, or if a
/// worker panics (the panic is propagated).
pub fn run_lanes<F>(
    trials: usize,
    lanes: usize,
    threads: usize,
    seeds: &SeedSequence,
    trial_fn: F,
) -> Vec<LaneAggregate>
where
    F: Fn(usize, SeedSequence) -> Vec<TrialMeasure> + Sync,
{
    run_lanes_with(
        trials,
        lanes,
        threads,
        seeds,
        || (),
        |(), trial, seeds| trial_fn(trial, seeds),
    )
}

/// [`run_lanes`] with a per-worker mutable context — the scratch-pool
/// seam for allocation-free trial loops.
///
/// Each worker thread calls `init()` once when it starts and hands the
/// resulting value to every `trial_fn` invocation it runs, so
/// expensive-to-build, reusable state (a `SearchScratch`, pooled
/// searcher instances, …) is allocated once per worker per cell and
/// reused across all of that worker's trials. The context never crosses
/// threads (no `Send`/`Sync` bound) and must not influence results:
/// determinism still comes from `(trial, seeds)` alone, so aggregates
/// remain bit-identical for any thread count — which is exactly what
/// the search layer's scratch-reuse tests assert.
///
/// # Panics
///
/// Same contract as [`run_lanes`].
pub fn run_lanes_with<C, I, F>(
    trials: usize,
    lanes: usize,
    threads: usize,
    seeds: &SeedSequence,
    init: I,
    trial_fn: F,
) -> Vec<LaneAggregate>
where
    I: Fn() -> C + Sync,
    F: Fn(&mut C, usize, SeedSequence) -> Vec<TrialMeasure> + Sync,
{
    run_lanes_metered(trials, lanes, threads, seeds, init, |ctx, _m, trial, s| {
        trial_fn(ctx, trial, s)
    })
    .0
}

/// [`run_lanes_with`] with a per-trial [`Metrics`] delta folded into one
/// run-wide bundle — the observability seam.
///
/// Each `trial_fn` invocation receives a zeroed `Metrics` to fill with
/// that trial's counters; the runner stamps `trials = 1` on the delta
/// afterwards and the consumer merges deltas **in strict trial order**
/// alongside the lane fold. `u64` counter addition is exact and
/// associative, so the merged bundle — like the aggregates — is
/// bit-identical for any thread count (and merge order would not even
/// matter; the strict order is inherited from the lane fold for free).
///
/// # Panics
///
/// Same contract as [`run_lanes`].
pub fn run_lanes_metered<C, I, F>(
    trials: usize,
    lanes: usize,
    threads: usize,
    seeds: &SeedSequence,
    init: I,
    trial_fn: F,
) -> (Vec<LaneAggregate>, Metrics)
where
    I: Fn() -> C + Sync,
    F: Fn(&mut C, &mut Metrics, usize, SeedSequence) -> Vec<TrialMeasure> + Sync,
{
    let (aggregates, obs) =
        run_lanes_observed(trials, lanes, threads, seeds, init, |ctx, obs, trial, s| {
            trial_fn(ctx, &mut obs.metrics, trial, s)
        });
    (aggregates, obs.metrics)
}

/// Locks the backpressure gate, recovering from poisoning.
///
/// The guarded state is a plain `(folded count, aborted flag)` pair
/// mutated only by single assignments, so a panic while a thread holds
/// the lock cannot leave it torn — recovering the guard is sound, and
/// it keeps a *contained* worker panic (see [`crate::install_faults`])
/// from cascading into a secondary "poisoned lock" panic.
fn lock_gate<'a>(frontier: &'a Mutex<(usize, bool)>) -> MutexGuard<'a, (usize, bool)> {
    frontier.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs one trial *contained*: each attempt is wrapped in
/// `catch_unwind`, the installed hook may inject a fault ahead of the
/// body, and the bundle's [`FailurePolicy`] decides whether a panicking
/// attempt propagates, retries, or skips the trial.
///
/// Returns `(Some(measures), delta)` for a (possibly retried) success —
/// the delta carries the attempt's counters plus the fault bookkeeping —
/// or `(None, delta)` for a skipped trial, whose delta carries only the
/// fault counters (`trials_skipped = 1`, nothing else). Retried
/// attempts re-derive the trial's seed stream from the trial index, and
/// injected faults fire *before* the body, so a successful retry is
/// bit-identical to a fault-free execution of the same trial.
fn run_contained<C, F>(
    cfg: &FaultInjection,
    ctx: &mut C,
    trial_fn: &F,
    trial: usize,
    seeds: &SeedSequence,
) -> (Option<Vec<TrialMeasure>>, TrialObs)
where
    F: Fn(&mut C, &mut TrialObs, usize, SeedSequence) -> Vec<TrialMeasure> + Sync,
{
    let mut injected = 0u64;
    let mut retried = 0u64;
    let mut attempt = 0u32;
    loop {
        // A fresh delta per attempt: a failed attempt's partial counters
        // are discarded wholesale, so retries cannot double-count.
        let mut delta = TrialObs::new();
        let fault = cfg.hook.as_ref().and_then(|hook| hook(trial, attempt));
        injected += fault.is_some() as u64;
        let allocs_before = nonsearch_alloc_counter::allocations();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            match fault {
                Some(InjectedFault::Stall { ms }) => {
                    std::thread::sleep(Duration::from_millis(ms));
                }
                Some(InjectedFault::Panic) => {
                    panic!("injected fault: trial {trial} attempt {attempt}");
                }
                None => {}
            }
            trial_fn(ctx, &mut delta, trial, trial_seeds(seeds, trial))
        }));
        match outcome {
            Ok(measures) => {
                delta.allocations +=
                    nonsearch_alloc_counter::allocations().saturating_sub(allocs_before);
                delta.metrics.faults_injected += injected;
                delta.metrics.trials_retried += retried;
                return (Some(measures), delta);
            }
            Err(payload) => match cfg.policy {
                FailurePolicy::Propagate => resume_unwind(payload),
                FailurePolicy::Retry { max } if attempt < max => {
                    retried += 1;
                    attempt += 1;
                }
                FailurePolicy::Retry { .. } | FailurePolicy::Skip => {
                    let mut skipped = TrialObs::new();
                    skipped.metrics.faults_injected = injected;
                    skipped.metrics.trials_retried = retried;
                    skipped.metrics.trials_skipped = 1;
                    return (None, skipped);
                }
            },
        }
    }
}

/// [`run_lanes_metered`] widened to the full [`TrialObs`] bundle —
/// metrics plus phase timers plus allocation counts.
///
/// `trial_fn` receives a zeroed `TrialObs` per trial; instrumented
/// call sites add phase nanoseconds to `obs.phases` with
/// [`elapsed_ns`] readings around their generate/load/search/harvest
/// sections, while the runner itself accounts for what trial bodies
/// cannot see: it stamps `metrics.trials = 1`, harvests the worker
/// thread's heap-allocation delta across the trial body into
/// `obs.allocations`, and charges the consumer's reorder-buffer fold
/// to `phases.merge_ns` on the merged bundle.
///
/// Determinism note: the deterministic half (`metrics`) is merged in
/// strict trial order exactly as in [`run_lanes_metered`]; the timers
/// ride alongside without being consulted by anything, so observing a
/// run cannot perturb it.
///
/// This is also the engine's **fault-injection seam**: when a
/// [`FaultInjection`] bundle is installed on the calling thread (see
/// [`crate::install_faults`]), it is snapshotted once at cell entry and
/// every trial runs contained — injected faults fire ahead of the body,
/// panicking attempts are retried or skipped per the bundle's
/// [`FailurePolicy`], and an optional watchdog deadline degrades the
/// cell gracefully ([`TrialObs::degraded`]) instead of hanging.
///
/// # Panics
///
/// Same contract as [`run_lanes`] (injected panics still propagate
/// under [`FailurePolicy::Propagate`], the default).
pub fn run_lanes_observed<C, I, F>(
    trials: usize,
    lanes: usize,
    threads: usize,
    seeds: &SeedSequence,
    init: I,
    trial_fn: F,
) -> (Vec<LaneAggregate>, TrialObs)
where
    I: Fn() -> C + Sync,
    F: Fn(&mut C, &mut TrialObs, usize, SeedSequence) -> Vec<TrialMeasure> + Sync,
{
    let mut aggregates = vec![LaneAggregate::default(); lanes];
    if trials == 0 || lanes == 0 {
        return (aggregates, TrialObs::new());
    }
    let workers = resolve_workers(threads, trials);

    // The fault bundle is snapshotted once per cell, on the caller's
    // thread (installation is thread-local); workers share this one
    // snapshot by reference so chaos cannot differ per worker.
    let faults = crate::faults::active();

    // Backpressure: workers may run at most `window` trials past the
    // fold frontier, bounding the reorder buffer + channel queue at
    // O(window) measurements even when one trial straggles. The mutex
    // holds (trials folded, consumer exited); both are only written
    // under the lock, so gate checks can never miss a wakeup.
    let window = (workers * 4).max(16);
    let frontier = Mutex::new((0usize, false));
    let frontier_moved = Condvar::new();

    // Raising the abort flag wakes every gated thread; it fires when the
    // consumer exits (normally or by panic) and when a worker's trial_fn
    // panics — otherwise the panicked trial would never reach the
    // consumer, the frontier would stall, and gated workers holding live
    // `tx` clones would deadlock the whole scope.
    struct OpenGateOnDrop<'a> {
        frontier: &'a Mutex<(usize, bool)>,
        frontier_moved: &'a Condvar,
        armed: bool,
    }
    impl Drop for OpenGateOnDrop<'_> {
        fn drop(&mut self) {
            if !self.armed {
                return;
            }
            lock_gate(self.frontier).1 = true;
            self.frontier_moved.notify_all();
        }
    }

    let next_trial = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Vec<TrialMeasure>, TrialObs)>();
    let (folded, observed, degraded) = std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next_trial = &next_trial;
            let init = &init;
            let trial_fn = &trial_fn;
            let faults = &faults;
            let (frontier, frontier_moved) = (&frontier, &frontier_moved);
            scope.spawn(move || {
                // Disarmed on clean exit; fires only if trial_fn panics.
                let mut on_panic = OpenGateOnDrop {
                    frontier,
                    frontier_moved,
                    armed: true,
                };
                // Per-worker context: built on this thread, reused for
                // every trial this worker steals, dropped with it.
                let mut ctx = init();
                loop {
                    let trial = next_trial.fetch_add(1, Ordering::Relaxed);
                    if trial >= trials {
                        break;
                    }
                    {
                        let mut gate = lock_gate(frontier);
                        while trial >= gate.0 + window && !gate.1 {
                            gate = frontier_moved.wait(gate).unwrap_or_else(|e| e.into_inner());
                        }
                        // An aborted run (consumer or sibling worker died)
                        // never advances the frontier; bail, don't wait.
                        if gate.1 {
                            break;
                        }
                    }
                    // A fresh delta per trial: the consumer folds them in
                    // trial order, so per-worker accumulation never leaks
                    // into the merged bundle. The allocation delta is read
                    // from this worker thread's own counter, so concurrent
                    // workers never see each other's allocations.
                    let (measures, mut delta) = match faults.as_deref() {
                        // Fault-free fast path: no catch_unwind frame.
                        None => {
                            let mut delta = TrialObs::new();
                            let allocs_before = nonsearch_alloc_counter::allocations();
                            let measures =
                                trial_fn(&mut ctx, &mut delta, trial, trial_seeds(seeds, trial));
                            delta.allocations += nonsearch_alloc_counter::allocations()
                                .saturating_sub(allocs_before);
                            (Some(measures), delta)
                        }
                        Some(cfg) => run_contained(cfg, &mut ctx, trial_fn, trial, seeds),
                    };
                    let measures = match measures {
                        Some(measures) => {
                            // Stamped here, not by trial_fn, so the
                            // bucket-sum == trials invariant can't drift
                            // per experiment.
                            delta.metrics.trials = 1;
                            measures
                        }
                        // Skipped trial: an empty measurement vector is
                        // the skip marker — unambiguous because a
                        // zero-lane cell returns before spawning workers,
                        // so real trials always carry `lanes >= 1`
                        // measurements. No `trials` stamp: the trial
                        // contributed nothing to fold.
                        None => Vec::new(),
                    };
                    // The consumer only disconnects on panic; stop quietly.
                    if tx.send((trial, measures, delta)).is_err() {
                        break;
                    }
                }
                on_panic.armed = false;
            });
        }
        drop(tx);

        // Consumer: fold measurements in strict trial order via a
        // reorder buffer, so the Welford stream is schedule-independent.
        // On any exit (including a panic below) this guard releases
        // workers blocked on the backpressure gate.
        let _release = OpenGateOnDrop {
            frontier: &frontier,
            frontier_moved: &frontier_moved,
            armed: true,
        };

        let mut pending: BTreeMap<usize, (Vec<TrialMeasure>, TrialObs)> = BTreeMap::new();
        let mut merged = TrialObs::new();
        let mut next_expected = 0usize;
        // The watchdog deadline (chaos runs only): past it the cell is
        // abandoned gracefully — partial aggregates with `degraded` set —
        // instead of hanging the run on a stuck worker.
        let deadline = faults
            .as_deref()
            .and_then(|cfg| cfg.cell_deadline_ms)
            // lint: allow(clock-env): watchdog deadline (chaos seam), never consulted by trial aggregates
            .map(|ms| Instant::now() + Duration::from_millis(ms));
        let mut degraded = false;
        loop {
            let received = match deadline {
                None => rx.recv().ok(),
                Some(deadline) => {
                    // lint: allow(clock-env): watchdog deadline check (chaos seam), never consulted by trial aggregates
                    match rx.recv_timeout(deadline.saturating_duration_since(Instant::now())) {
                        Ok(item) => Some(item),
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            degraded = true;
                            None
                        }
                        Err(mpsc::RecvTimeoutError::Disconnected) => None,
                    }
                }
            };
            let Some((trial, measures, delta)) = received else {
                break;
            };
            // The merge phase is the consumer thread's own busy time:
            // everything from receiving a delta to advancing the fold
            // frontier, charged to the merged bundle directly (workers
            // never see it).
            // lint: allow(clock-env): merge-phase timer feeds resource telemetry, never the trial aggregates
            let merge_start = Instant::now();
            // Validated here (not in the worker) so the panic reaches the
            // caller with its message instead of scope's generic payload.
            // An empty vector is a skipped trial's marker, not a lane
            // mismatch: its delta merges but nothing folds.
            if !measures.is_empty() {
                assert_eq!(
                    measures.len(),
                    lanes,
                    "trial_fn returned {} measurements for a {lanes}-lane cell",
                    measures.len()
                );
            }
            pending.insert(trial, (measures, delta));
            debug_assert!(pending.len() <= window, "reorder buffer exceeded window");
            let before = next_expected;
            while let Some((measures, delta)) = pending.remove(&next_expected) {
                for (aggregate, measure) in aggregates.iter_mut().zip(measures) {
                    aggregate.push(measure);
                }
                merged.merge(&delta);
                next_expected += 1;
            }
            if next_expected != before {
                lock_gate(&frontier).0 = next_expected;
                frontier_moved.notify_all();
            }
            merged.phases.merge_ns += elapsed_ns(merge_start);
        }
        if degraded {
            // Abandon the cell: raise the abort flag so gated workers
            // bail out, then drain (without folding) whatever in-flight
            // workers still deliver so the channel empties and the
            // scope's join cannot block on a full send.
            lock_gate(&frontier).1 = true;
            frontier_moved.notify_all();
            while rx.recv().is_ok() {}
        }
        // Completeness is asserted after the scope joins the workers, so
        // a worker panic propagates as itself, not as a count mismatch.
        (next_expected, merged, degraded)
    });
    let mut observed = observed;
    observed.degraded = degraded;
    if !degraded {
        assert_eq!(folded, trials, "trial stream incomplete");
    }
    (aggregates, observed)
}

/// Single-lane convenience wrapper around [`run_lanes`].
pub fn run_cell<F>(
    trials: usize,
    threads: usize,
    seeds: &SeedSequence,
    trial_fn: F,
) -> LaneAggregate
where
    F: Fn(usize, SeedSequence) -> TrialMeasure + Sync,
{
    run_lanes(trials, 1, threads, seeds, |trial, seeds| {
        vec![trial_fn(trial, seeds)]
    })
    .pop()
    .expect("one lane requested")
}

/// Single-lane convenience wrapper around [`run_lanes_with`] (the
/// per-worker-context seam).
pub fn run_cell_with<C, I, F>(
    trials: usize,
    threads: usize,
    seeds: &SeedSequence,
    init: I,
    trial_fn: F,
) -> LaneAggregate
where
    I: Fn() -> C + Sync,
    F: Fn(&mut C, usize, SeedSequence) -> TrialMeasure + Sync,
{
    run_lanes_with(trials, 1, threads, seeds, init, |ctx, trial, seeds| {
        vec![trial_fn(ctx, trial, seeds)]
    })
    .pop()
    .expect("one lane requested")
}

/// Single-lane convenience wrapper around [`run_lanes_metered`].
pub fn run_cell_metered<C, I, F>(
    trials: usize,
    threads: usize,
    seeds: &SeedSequence,
    init: I,
    trial_fn: F,
) -> (LaneAggregate, Metrics)
where
    I: Fn() -> C + Sync,
    F: Fn(&mut C, &mut Metrics, usize, SeedSequence) -> TrialMeasure + Sync,
{
    let (aggregates, metrics) =
        run_lanes_metered(trials, 1, threads, seeds, init, |ctx, m, trial, seeds| {
            vec![trial_fn(ctx, m, trial, seeds)]
        });
    (
        aggregates.into_iter().next().expect("one lane requested"),
        metrics,
    )
}

/// Single-lane convenience wrapper around [`run_lanes_observed`].
pub fn run_cell_observed<C, I, F>(
    trials: usize,
    threads: usize,
    seeds: &SeedSequence,
    init: I,
    trial_fn: F,
) -> (LaneAggregate, TrialObs)
where
    I: Fn() -> C + Sync,
    F: Fn(&mut C, &mut TrialObs, usize, SeedSequence) -> TrialMeasure + Sync,
{
    let (aggregates, obs) =
        run_lanes_observed(trials, 1, threads, seeds, init, |ctx, o, trial, seeds| {
            vec![trial_fn(ctx, o, trial, seeds)]
        });
    (
        aggregates.into_iter().next().expect("one lane requested"),
        obs,
    )
}

/// Runs `count` independent jobs on `threads` workers (0 = all cores)
/// and returns their results **in job order**, regardless of which
/// worker ran what.
///
/// This is the engine's deterministic parallel *map* (where
/// [`run_lanes`] is its deterministic parallel *fold*): job `i` receives
/// [`trial_seeds`]`(seeds, i)`, so any output derived from the seeds
/// alone is bit-identical for every thread count. The corpus builder
/// shards graph generation through this — each job writes its own
/// artifact and returns metadata, and the ordered result vector makes
/// the assembled manifest deterministic.
///
/// Unlike [`run_lanes`] there is no backpressure window: all `count`
/// results are materialized, so keep per-job results small (metadata,
/// not megabytes) for large `count`.
///
/// # Panics
///
/// Propagates job panics (the scope re-raises them on join).
pub fn run_ordered<T, F>(count: usize, threads: usize, seeds: &SeedSequence, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, SeedSequence) -> T + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let workers = resolve_workers(threads, count);
    let next_job = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    let results = std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next_job = &next_job;
            let job = &job;
            scope.spawn(move || loop {
                let i = next_job.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let result = job(i, trial_seeds(seeds, i));
                // The receiver only disconnects if assembly below
                // panicked; stop quietly and let the scope re-raise.
                if tx.send((i, result)).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        let mut results: Vec<Option<T>> = Vec::with_capacity(count);
        results.resize_with(count, || None);
        for (i, result) in rx {
            debug_assert!(results[i].is_none(), "job {i} delivered twice");
            results[i] = Some(result);
        }
        results
    });
    // Assembled after the scope joins the workers, so a job panic
    // propagates as itself rather than as a completeness failure.
    let assembled: Vec<T> = results.into_iter().flatten().collect();
    assert_eq!(assembled.len(), count, "job stream incomplete");
    assembled
}

/// Resolves a `--threads`-style setting: `0` means one per available
/// core. Shared by the runner and [`CliOptions::resolved_threads`]
/// (`crate::CliOptions`) so the fallback cannot drift.
pub(crate) fn resolve_thread_setting(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

fn resolve_workers(threads: usize, trials: usize) -> usize {
    resolve_thread_setting(threads).min(trials).max(1)
}

/// The worker count the [`run_lanes`] family resolves from a
/// `--threads` setting (`0` = all cores) and a trial count — exposed so
/// resource records can report how many workers actually ran a cell
/// (the phase-sum validation envelope scales with it).
pub fn resolved_workers(threads: usize, trials: usize) -> usize {
    resolve_workers(threads, trials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn synthetic(trial: usize, seeds: SeedSequence) -> TrialMeasure {
        // Deterministic pseudo-measurement derived from the trial seed.
        let raw = seeds.child(0);
        TrialMeasure::new(
            (raw % 1000) as f64 + trial as f64 * 0.5,
            !raw.is_multiple_of(3),
        )
    }

    #[test]
    fn aggregates_are_bit_identical_across_thread_counts() {
        let seeds = SeedSequence::new(42);
        let baseline = run_cell(97, 1, &seeds, synthetic);
        for threads in [2, 3, 4, 8] {
            let parallel = run_cell(97, threads, &seeds, synthetic);
            assert_eq!(parallel, baseline, "threads={threads}");
        }
    }

    #[test]
    fn aggregate_matches_sequential_welford() {
        let seeds = SeedSequence::new(7);
        let agg = run_cell(50, 4, &seeds, synthetic);
        let mut expected = StreamingStats::new();
        let mut successes = 0u64;
        for t in 0..50 {
            let m = synthetic(t, trial_seeds(&seeds, t));
            expected.push(m.value);
            successes += m.success as u64;
        }
        assert_eq!(agg.stats, expected);
        assert_eq!(agg.successes, successes);
        assert!((agg.success_rate() - successes as f64 / 50.0).abs() < 1e-15);
    }

    #[test]
    fn lanes_aggregate_independently() {
        let seeds = SeedSequence::new(3);
        let aggs = run_lanes(40, 2, 4, &seeds, |trial, seeds| {
            let base = synthetic(trial, seeds);
            vec![base, TrialMeasure::new(base.value * 2.0, !base.success)]
        });
        assert_eq!(aggs.len(), 2);
        assert_eq!(aggs[0].count(), 40);
        assert_eq!(aggs[1].count(), 40);
        assert!((aggs[1].mean() - 2.0 * aggs[0].mean()).abs() < 1e-9 * aggs[1].mean().abs());
        assert_eq!(aggs[0].successes + aggs[1].successes, 40);
    }

    #[test]
    fn every_trial_runs_exactly_once() {
        let seeds = SeedSequence::new(11);
        let calls = AtomicU64::new(0);
        let agg = run_cell(64, 8, &seeds, |trial, seeds| {
            calls.fetch_add(1, Ordering::Relaxed);
            synthetic(trial, seeds)
        });
        assert_eq!(calls.load(Ordering::Relaxed), 64);
        assert_eq!(agg.count(), 64);
    }

    #[test]
    fn zero_trials_and_zero_lanes_are_empty() {
        let seeds = SeedSequence::new(1);
        let agg = run_cell(0, 4, &seeds, synthetic);
        assert_eq!(agg.count(), 0);
        assert_eq!(agg.success_rate(), 0.0);
        assert!(run_lanes(10, 0, 4, &seeds, |_, _| vec![]).is_empty());
    }

    #[test]
    #[should_panic(expected = "lane")]
    fn wrong_lane_count_panics() {
        let seeds = SeedSequence::new(1);
        let _ = run_lanes(4, 2, 1, &seeds, |trial, seeds| {
            vec![synthetic(trial, seeds)]
        });
    }

    #[test]
    #[should_panic]
    fn trial_panic_propagates_instead_of_deadlocking() {
        // Trial 10 dies, so the frontier can never pass 10; workers
        // gated beyond the backpressure window must be released (not
        // left blocking the channel) and the panic must reach us.
        let seeds = SeedSequence::new(17);
        let _ = run_cell(100, 4, &seeds, |trial, s| {
            if trial == 10 {
                panic!("trial 10 exploded");
            }
            synthetic(trial, s)
        });
    }

    #[test]
    fn straggler_trial_neither_deadlocks_nor_reorders() {
        // Trial 0 is pathologically slow; the backpressure gate must
        // hold the fast workers near the frontier without deadlock, and
        // the aggregate must still equal the single-threaded one.
        let seeds = SeedSequence::new(23);
        let slow = |trial: usize, s: SeedSequence| {
            if trial == 0 {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            synthetic(trial, s)
        };
        let parallel = run_cell(120, 8, &seeds, slow);
        let sequential = run_cell(120, 1, &seeds, synthetic);
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn run_ordered_returns_results_in_job_order() {
        let seeds = SeedSequence::new(9);
        let expected: Vec<u64> = (0..120).map(|i| trial_seeds(&seeds, i).child(0)).collect();
        for threads in [1, 4, 8] {
            let got = run_ordered(120, threads, &seeds, |_i, s| s.child(0));
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn run_ordered_handles_empty_and_straggler_jobs() {
        let seeds = SeedSequence::new(10);
        assert!(run_ordered(0, 4, &seeds, |i, _| i).is_empty());
        let got = run_ordered(40, 8, &seeds, |i, _| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            i * 2
        });
        assert_eq!(got, (0..40).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn run_ordered_propagates_job_panics() {
        let seeds = SeedSequence::new(11);
        let _ = run_ordered(32, 4, &seeds, |i, _| {
            if i == 7 {
                panic!("job 7 exploded");
            }
            i
        });
    }

    #[test]
    fn trial_seed_derivation_matches_subsequence() {
        let seeds = SeedSequence::new(5);
        assert_eq!(trial_seeds(&seeds, 3), seeds.subsequence(3));
    }

    #[test]
    fn worker_contexts_are_built_once_per_worker_and_reused() {
        let seeds = SeedSequence::new(31);
        let inits = AtomicU64::new(0);
        let agg = run_cell_with(
            64,
            4,
            &seeds,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize // per-worker trial counter
            },
            |count, trial, seeds| {
                *count += 1;
                synthetic(trial, seeds)
            },
        );
        assert_eq!(agg.count(), 64);
        let workers = inits.load(Ordering::Relaxed);
        assert!(
            (1..=4).contains(&workers),
            "one context per worker, got {workers}"
        );
    }

    #[test]
    fn metered_runs_merge_metrics_bit_identically_across_threads() {
        // Counters are u64 sums folded in strict trial order, so the
        // merged bundle must match the single-threaded one exactly.
        let seeds = SeedSequence::new(91);
        let metered = |threads: usize| {
            run_cell_metered(
                97,
                threads,
                &seeds,
                || (),
                |(), m, trial, s| {
                    let measure = synthetic(trial, s);
                    m.requests = measure.value as u64;
                    m.discoveries = trial as u64 % 7;
                    m.observe_trial_requests(m.requests);
                    measure
                },
            )
        };
        let (baseline_agg, baseline_metrics) = metered(1);
        assert_eq!(baseline_metrics.trials, 97);
        assert_eq!(baseline_metrics.trial_requests.total(), 97);
        assert!(baseline_metrics.requests > 0);
        for threads in [2, 4, 8] {
            let (agg, metrics) = metered(threads);
            assert_eq!(agg, baseline_agg, "threads={threads}");
            assert_eq!(metrics, baseline_metrics, "threads={threads}");
        }
    }

    #[test]
    fn metered_trial_stamp_is_set_by_the_runner() {
        // trial_fn never touches `trials`; the runner stamps 1 per trial
        // so the histogram's bucket-sum == trials invariant holds
        // whenever trial_fn records exactly one sample.
        let seeds = SeedSequence::new(92);
        let (_, metrics) = run_cell_metered(
            10,
            4,
            &seeds,
            || (),
            |(), m, trial, s| {
                m.observe_trial_requests(trial as u64);
                synthetic(trial, s)
            },
        );
        assert_eq!(metrics.trials, 10);
        assert_eq!(metrics.trial_requests.total(), metrics.trials);
    }

    #[test]
    fn observed_runs_carry_phases_without_perturbing_metrics() {
        // Phase timers ride alongside the deterministic bundle: the
        // metrics half must stay bit-identical across thread counts
        // even though the nanosecond sums differ run to run.
        let seeds = SeedSequence::new(93);
        let observed = |threads: usize| {
            run_cell_observed(
                64,
                threads,
                &seeds,
                || (),
                |(), obs, trial, s| {
                    let t0 = Instant::now();
                    let measure = synthetic(trial, s);
                    obs.metrics.requests = measure.value as u64;
                    obs.metrics.observe_trial_requests(obs.metrics.requests);
                    obs.phases.search_ns += elapsed_ns(t0);
                    measure
                },
            )
        };
        let (baseline_agg, baseline_obs) = observed(1);
        assert_eq!(baseline_obs.metrics.trials, 64);
        // The consumer charges its fold to merge_ns on every run.
        assert!(baseline_obs.phases.merge_ns > 0);
        for threads in [2, 4] {
            let (agg, obs) = observed(threads);
            assert_eq!(agg, baseline_agg, "threads={threads}");
            assert_eq!(obs.metrics, baseline_obs.metrics, "threads={threads}");
        }
    }

    #[test]
    fn observed_allocation_counts_are_zero_without_the_allocator() {
        // The test binary does not install CountingAllocator, so the
        // harvested deltas must read as zero — the runner may call the
        // counter unconditionally without lying.
        let seeds = SeedSequence::new(94);
        let (_, obs) = run_cell_observed(
            16,
            2,
            &seeds,
            || (),
            |(), _obs, trial, s| {
                // A real heap allocation (Box, not a stack array) that
                // would count if the allocator were installed.
                let _heap = Box::new([trial; 8]);
                synthetic(trial, s)
            },
        );
        assert_eq!(obs.allocations, 0);
    }

    #[test]
    fn trial_obs_merge_is_fieldwise() {
        let mut a = TrialObs::new();
        a.metrics.requests = 5;
        a.phases.search_ns = 100;
        a.allocations = 2;
        let mut b = TrialObs::new();
        b.metrics.requests = 7;
        b.phases.search_ns = 10;
        b.phases.merge_ns = 1;
        b.allocations = 3;
        b.degraded = true;
        a.merge(&b);
        assert_eq!(a.metrics.requests, 12);
        assert_eq!(a.phases.search_ns, 110);
        assert_eq!(a.phases.merge_ns, 1);
        assert_eq!(a.allocations, 5);
        assert!(a.degraded, "degraded must OR through merges");
    }

    #[test]
    fn gate_lock_recovers_from_poisoning() {
        // A panic while holding the gate poisons the mutex; lock_gate
        // must recover the guard (the state is a plain pair, never torn)
        // so contained worker panics don't cascade.
        let gate = Mutex::new((3usize, false));
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = lock_gate(&gate);
            panic!("poison the gate");
        }));
        assert!(gate.is_poisoned());
        assert_eq!(*lock_gate(&gate), (3, false));
    }

    /// A metered trial body shared by the fault-policy tests so clean
    /// and chaotic runs execute identical code.
    fn metered_body(m: &mut Metrics, trial: usize, s: SeedSequence) -> TrialMeasure {
        let measure = synthetic(trial, s);
        m.requests = measure.value as u64;
        m.discoveries = trial as u64 % 7;
        m.observe_trial_requests(m.requests);
        measure
    }

    #[test]
    fn retry_aggregates_are_bit_identical_to_fault_free_runs() {
        let seeds = SeedSequence::new(55);
        let (clean_agg, clean_metrics) =
            run_cell_metered(97, 1, &seeds, || (), |(), m, t, s| metered_body(m, t, s));
        for threads in [1, 2, 4, 8] {
            let _scope = crate::faults::install_faults(FaultInjection {
                policy: FailurePolicy::Retry { max: 2 },
                hook: Some(std::sync::Arc::new(|trial, attempt| {
                    (attempt == 0 && trial % 5 == 0).then_some(InjectedFault::Panic)
                })),
                cell_deadline_ms: None,
            });
            let (agg, metrics) = run_cell_metered(
                97,
                threads,
                &seeds,
                || (),
                |(), m, t, s| metered_body(m, t, s),
            );
            assert_eq!(agg, clean_agg, "threads={threads}");
            // Trials 0, 5, …, 95 each faulted once and retried once.
            assert_eq!(metrics.faults_injected, 20, "threads={threads}");
            assert_eq!(metrics.trials_retried, 20, "threads={threads}");
            assert_eq!(metrics.trials_skipped, 0, "threads={threads}");
            // Beyond the fault bookkeeping, the merged bundle is the
            // clean one, bit for bit.
            let mut washed = metrics;
            washed.faults_injected = 0;
            washed.trials_retried = 0;
            assert_eq!(washed, clean_metrics, "threads={threads}");
        }
    }

    #[test]
    fn skip_policy_drops_faulted_trials_and_counts_them() {
        let seeds = SeedSequence::new(56);
        let _scope = crate::faults::install_faults(FaultInjection {
            policy: FailurePolicy::Skip,
            hook: Some(std::sync::Arc::new(|trial, _| {
                (trial < 3).then_some(InjectedFault::Panic)
            })),
            cell_deadline_ms: None,
        });
        let (agg, metrics) =
            run_cell_metered(20, 4, &seeds, || (), |(), m, t, s| metered_body(m, t, s));
        // Trials 0–2 were dropped: they fold no measurements and no
        // `trials` stamp, so the histogram invariant still holds.
        assert_eq!(agg.count(), 17);
        assert_eq!(metrics.trials, 17);
        assert_eq!(metrics.trial_requests.total(), 17);
        assert_eq!(metrics.trials_skipped, 3);
        assert_eq!(metrics.faults_injected, 3);
        assert_eq!(metrics.trials_retried, 0);
    }

    #[test]
    fn exhausted_retries_fall_back_to_skip() {
        // A hook that faults every attempt defeats Retry; after `max`
        // re-runs the trial must be skipped, not spun forever.
        let seeds = SeedSequence::new(61);
        let _scope = crate::faults::install_faults(FaultInjection {
            policy: FailurePolicy::Retry { max: 2 },
            hook: Some(std::sync::Arc::new(|trial, _attempt| {
                (trial == 4).then_some(InjectedFault::Panic)
            })),
            cell_deadline_ms: None,
        });
        let (agg, metrics) =
            run_cell_metered(10, 2, &seeds, || (), |(), m, t, s| metered_body(m, t, s));
        assert_eq!(agg.count(), 9);
        assert_eq!(metrics.trials_skipped, 1);
        assert_eq!(metrics.faults_injected, 3); // initial attempt + 2 retries
        assert_eq!(metrics.trials_retried, 2);
    }

    #[test]
    #[should_panic] // scope re-raises with its own generic payload
    fn propagate_policy_reraises_injected_panics() {
        let seeds = SeedSequence::new(58);
        let _scope = crate::faults::install_faults(FaultInjection {
            policy: FailurePolicy::Propagate,
            hook: Some(std::sync::Arc::new(|trial, _| {
                (trial == 2).then_some(InjectedFault::Panic)
            })),
            cell_deadline_ms: None,
        });
        let _ = run_cell(16, 2, &seeds, synthetic);
    }

    #[test]
    fn injected_stalls_do_not_perturb_aggregates() {
        let seeds = SeedSequence::new(59);
        let clean = run_cell(40, 1, &seeds, synthetic);
        let _scope = crate::faults::install_faults(FaultInjection {
            policy: FailurePolicy::Propagate,
            hook: Some(std::sync::Arc::new(|trial, _| {
                (trial == 0).then_some(InjectedFault::Stall { ms: 30 })
            })),
            cell_deadline_ms: None,
        });
        let stalled = run_cell(40, 8, &seeds, synthetic);
        assert_eq!(stalled, clean);
    }

    #[test]
    fn installed_default_bundle_leaves_runs_bit_identical() {
        // Installing an empty bundle routes trials through the contained
        // path; the results must not change.
        let seeds = SeedSequence::new(57);
        let clean = run_cell(64, 4, &seeds, synthetic);
        let _scope = crate::faults::install_faults(FaultInjection::default());
        let contained = run_cell(64, 4, &seeds, synthetic);
        assert_eq!(contained, clean);
    }

    #[test]
    fn watchdog_degrades_gracefully_instead_of_hanging() {
        // Trial 0 stalls far past the deadline; the cell must come back
        // degraded with partial (here: empty) aggregates instead of
        // blocking on the stuck worker's fold.
        let seeds = SeedSequence::new(60);
        let _scope = crate::faults::install_faults(FaultInjection {
            policy: FailurePolicy::Propagate,
            hook: Some(std::sync::Arc::new(|trial, _| {
                (trial == 0).then_some(InjectedFault::Stall { ms: 1_000 })
            })),
            cell_deadline_ms: Some(50),
        });
        let (agg, obs) = run_cell_observed(8, 2, &seeds, || (), |(), _o, t, s| synthetic(t, s));
        assert!(obs.degraded);
        assert!(agg.count() < 8, "degraded cell folded all trials");
    }

    #[test]
    fn context_runs_are_bit_identical_to_plain_runs_across_threads() {
        // A context that hoards mutable state must not perturb results:
        // determinism comes from (trial, seeds) alone.
        let seeds = SeedSequence::new(77);
        let plain = run_cell(80, 1, &seeds, synthetic);
        for threads in [1, 2, 8] {
            let ctx = run_cell_with(80, threads, &seeds, Vec::<f64>::new, |buf, trial, seeds| {
                let m = synthetic(trial, seeds);
                buf.push(m.value); // grows across the worker's trials
                m
            });
            assert_eq!(ctx, plain, "threads={threads}");
        }
    }
}
