//! Strong-model searchers: expansion-order policies over known vertices.

use crate::{DiscoveredView, SearchTask, StampedNodeSet, StrongSearcher};
use nonsearch_graph::NodeId;
use rand::RngCore;

/// Strong-model BFS: expand known vertices in discovery order.
#[derive(Debug, Clone, Default)]
pub struct StrongBfs {
    expanded: StampedNodeSet,
    cursor: usize,
}

impl StrongBfs {
    /// Creates the searcher.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StrongSearcher for StrongBfs {
    fn name(&self) -> &'static str {
        "strong-bfs"
    }

    fn next_request(
        &mut self,
        _task: &SearchTask,
        view: &DiscoveredView,
        _rng: &mut dyn RngCore,
    ) -> Option<NodeId> {
        while self.cursor < view.len() {
            let v = view.discovered()[self.cursor];
            if !self.expanded.contains(v) {
                return Some(v);
            }
            self.cursor += 1;
        }
        None
    }

    fn observe(&mut self, expanded: NodeId, _neighbors: &[NodeId]) {
        self.expanded.insert(expanded);
    }

    fn reset(&mut self) {
        self.expanded.clear();
        self.cursor = 0;
    }

    fn reserve(&mut self, nodes: usize, _edges: usize) {
        self.expanded.reserve(nodes);
    }
}

/// Strong-model high-degree greedy: expand the known, unexpanded vertex
/// of maximum degree (Adamic et al.'s strategy as literally stated —
/// neighbor degrees *are* known in the strong model).
#[derive(Debug, Clone, Default)]
pub struct StrongHighDegree {
    expanded: StampedNodeSet,
}

impl StrongHighDegree {
    /// Creates the searcher.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StrongSearcher for StrongHighDegree {
    fn name(&self) -> &'static str {
        "strong-high-degree"
    }

    fn next_request(
        &mut self,
        _task: &SearchTask,
        view: &DiscoveredView,
        _rng: &mut dyn RngCore,
    ) -> Option<NodeId> {
        view.discovered()
            .iter()
            .copied()
            .filter(|&v| !self.expanded.contains(v))
            .max_by_key(|&v| {
                (
                    view.degree_of(v).expect("discovered vertices have info"),
                    std::cmp::Reverse(v),
                )
            })
    }

    fn observe(&mut self, expanded: NodeId, _neighbors: &[NodeId]) {
        self.expanded.insert(expanded);
    }

    fn reset(&mut self) {
        self.expanded.clear();
    }

    fn reserve(&mut self, nodes: usize, _edges: usize) {
        self.expanded.reserve(nodes);
    }
}

/// Strong-model identity greedy: expand the known, unexpanded vertex with
/// label closest to the target's.
#[derive(Debug, Clone, Default)]
pub struct StrongGreedyId {
    expanded: StampedNodeSet,
}

impl StrongGreedyId {
    /// Creates the searcher.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StrongSearcher for StrongGreedyId {
    fn name(&self) -> &'static str {
        "strong-greedy-id"
    }

    fn next_request(
        &mut self,
        task: &SearchTask,
        view: &DiscoveredView,
        _rng: &mut dyn RngCore,
    ) -> Option<NodeId> {
        view.discovered()
            .iter()
            .copied()
            .filter(|&v| !self.expanded.contains(v))
            .min_by_key(|&v| (v.label().abs_diff(task.target.label()), v))
    }

    fn observe(&mut self, expanded: NodeId, _neighbors: &[NodeId]) {
        self.expanded.insert(expanded);
    }

    fn reset(&mut self) {
        self.expanded.clear();
    }

    fn reserve(&mut self, nodes: usize, _edges: usize) {
        self.expanded.reserve(nodes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_strong, SearchTask};
    use nonsearch_graph::UndirectedCsr;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0)
    }

    #[test]
    fn strong_high_degree_heads_for_hubs() {
        // Leaf → small hub → big hub → target leaf.
        let mut edges = vec![(0, 1), (1, 2), (1, 3), (3, 4), (3, 5), (3, 6), (3, 7)];
        edges.push((7, 8));
        let g = UndirectedCsr::from_edges(9, edges).unwrap();
        let task = SearchTask::new(NodeId::new(0), NodeId::new(8));
        let o = run_strong(&g, &task, &mut StrongHighDegree::new(), &mut rng()).unwrap();
        assert!(o.found);
        assert!(o.requests <= g.node_count());
    }

    #[test]
    fn strong_greedy_id_on_path_is_direct() {
        let g = UndirectedCsr::from_edges(12, (1..12).map(|i| (i - 1, i))).unwrap();
        let task = SearchTask::new(NodeId::new(0), NodeId::new(11));
        let o = run_strong(&g, &task, &mut StrongGreedyId::new(), &mut rng()).unwrap();
        assert!(o.found);
        assert_eq!(o.requests, 11);
    }

    #[test]
    fn strong_bfs_discovers_within_node_budget() {
        let g = UndirectedCsr::from_edges(6, [(0, 1), (0, 2), (1, 3), (2, 4), (4, 5)]).unwrap();
        let task = SearchTask::new(NodeId::new(0), NodeId::new(5));
        let o = run_strong(&g, &task, &mut StrongBfs::new(), &mut rng()).unwrap();
        assert!(o.found);
        assert!(o.requests < g.node_count());
    }

    #[test]
    fn strong_searchers_give_up_cleanly() {
        let g = UndirectedCsr::from_edges(3, [(0, 1)]).unwrap();
        let task = SearchTask::new(NodeId::new(0), NodeId::new(2));
        assert!(
            run_strong(&g, &task, &mut StrongBfs::new(), &mut rng())
                .unwrap()
                .gave_up
        );
        assert!(
            run_strong(&g, &task, &mut StrongHighDegree::new(), &mut rng())
                .unwrap()
                .gave_up
        );
        assert!(
            run_strong(&g, &task, &mut StrongGreedyId::new(), &mut rng())
                .unwrap()
                .gave_up
        );
    }
}
