//! The Cooper–Frieze general model of web graphs, rephrased with indegree.
//!
//! Paper, §1: *"at each time step, one randomly chooses whether to apply
//! procedure New (with probability α) or procedure Old (with probability
//! 1−α); procedure New will add a new vertex and a random number (governed
//! by distribution q) of outgoing edges, while procedure Old will add a
//! random number (governed by distribution p) of new outgoing edges to a
//! randomly selected existing vertex. Parameters β, γ and δ control
//! probabilities that additional choices of vertices and endpoints are
//! done preferentially or uniformly."*
//!
//! As in the paper, preferential choices of edge *terminals* are
//! proportional to **indegree** (mixed with a uniform component), which
//! keeps the process well-defined from the two-vertex seed onward.

use crate::error::check_probability;
use crate::{
    AttachmentKind, AttachmentRecord, AttachmentTrace, DiscreteDistribution, GeneratorError,
    Result, UrnSampler,
};
use nonsearch_graph::{EvolvingDigraph, NodeId, UndirectedCsr};
use rand::Rng;

/// Which procedure a time step applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepKind {
    /// Procedure New: a vertex plus `j ~ q` out-edges were added.
    New,
    /// Procedure Old: `j ~ p` out-edges were added to an existing vertex.
    Old,
}

/// Parameters of the Cooper–Frieze process.
///
/// | field | paper role |
/// |-------|-----------|
/// | `alpha` | probability of procedure **New** (`0 < α ≤ 1`) |
/// | `beta`  | New-step terminals: preferential w.p. `β`, uniform otherwise |
/// | `gamma` | Old-step terminals: preferential w.p. `γ`, uniform otherwise |
/// | `delta` | Old-step initial vertex: uniform w.p. `δ`, else ∝ out-degree + 1 |
/// | `new_edges` | distribution `q` of out-edges per New step |
/// | `old_edges` | distribution `p` of out-edges per Old step |
///
/// Terminal choices mix an indegree-proportional component with a uniform
/// component exactly as in the rephrased Móri model, so `β = γ = 1` is
/// pure preferential attachment and `β = γ = 0` pure uniform.
#[derive(Debug, Clone, PartialEq)]
pub struct CooperFriezeConfig {
    alpha: f64,
    beta: f64,
    gamma: f64,
    delta: f64,
    new_edges: DiscreteDistribution,
    old_edges: DiscreteDistribution,
}

impl CooperFriezeConfig {
    /// Builds a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`GeneratorError::InvalidParameter`] if any probability is
    /// outside `[0, 1]` or `alpha == 0` (the process would never grow).
    pub fn new(
        alpha: f64,
        beta: f64,
        gamma: f64,
        delta: f64,
        new_edges: DiscreteDistribution,
        old_edges: DiscreteDistribution,
    ) -> Result<Self> {
        check_probability("alpha", alpha)?;
        check_probability("beta", beta)?;
        check_probability("gamma", gamma)?;
        check_probability("delta", delta)?;
        if alpha == 0.0 {
            return Err(GeneratorError::invalid(
                "alpha",
                0.0,
                "a probability in (0, 1]",
            ));
        }
        Ok(CooperFriezeConfig {
            alpha,
            beta,
            gamma,
            delta,
            new_edges,
            old_edges,
        })
    }

    /// A balanced configuration commonly used in experiments: terminals
    /// are an even preferential/uniform mix, single edges per step.
    ///
    /// # Errors
    ///
    /// Returns [`GeneratorError::InvalidParameter`] if `alpha ∉ (0, 1]`.
    pub fn balanced(alpha: f64) -> Result<Self> {
        CooperFriezeConfig::new(
            alpha,
            0.5,
            0.5,
            0.5,
            DiscreteDistribution::constant(1).expect("1 is positive"),
            DiscreteDistribution::constant(1).expect("1 is positive"),
        )
    }

    /// Probability of procedure New.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// New-step terminal preferential probability.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Old-step terminal preferential probability.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Old-step initial-vertex uniform probability.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Distribution `q` of out-edges per New step.
    pub fn new_edges(&self) -> &DiscreteDistribution {
        &self.new_edges
    }

    /// Distribution `p` of out-edges per Old step.
    pub fn old_edges(&self) -> &DiscreteDistribution {
        &self.old_edges
    }
}

/// A sampled Cooper–Frieze graph with construction provenance.
///
/// The process starts from the seed `{1, 2}` with edge `2 → 1` and runs
/// until `n` vertices exist. Every New vertex sends at least one edge to
/// the existing graph, so the sample is connected by construction — a
/// requirement the paper imposes "since we want our searching processes
/// to be able to terminate with probability 1".
#[derive(Debug, Clone)]
pub struct CooperFrieze {
    digraph: EvolvingDigraph,
    trace: AttachmentTrace,
    steps: Vec<StepKind>,
    config: CooperFriezeConfig,
}

impl CooperFrieze {
    /// Samples a Cooper–Frieze graph with `n ≥ 2` vertices.
    ///
    /// # Errors
    ///
    /// Returns [`GeneratorError::TooSmall`] if `n < 2`.
    pub fn sample<R: Rng + ?Sized>(
        n: usize,
        config: &CooperFriezeConfig,
        rng: &mut R,
    ) -> Result<CooperFrieze> {
        if n < 2 {
            return Err(GeneratorError::TooSmall {
                requested: n,
                minimum: 2,
            });
        }
        let mut digraph = EvolvingDigraph::with_capacity(n, 2 * n);
        let mut trace = AttachmentTrace::with_capacity(2 * n);
        let mut steps = Vec::new();
        let mut in_urn = UrnSampler::with_capacity(2 * n);
        let mut out_urn = UrnSampler::with_capacity(2 * n);

        let v1 = digraph.add_node();
        let v2 = digraph.add_node();
        digraph.add_edge(v2, v1).expect("seed endpoints exist");
        trace.push(AttachmentRecord {
            child: v2,
            father: v1,
            kind: AttachmentKind::Seed,
        });
        in_urn.push(v1);
        out_urn.push(v2);

        while digraph.node_count() < n {
            if rng.gen::<f64>() < config.alpha {
                steps.push(StepKind::New);
                let existing = digraph.node_count();
                let child = digraph.add_node();
                let j = config.new_edges.sample(rng);
                for _ in 0..j {
                    let (father, kind) = Self::choose_terminal(
                        config.beta,
                        existing,
                        &in_urn,
                        digraph.total_in_degree(),
                        rng,
                    );
                    digraph.add_edge(child, father).expect("endpoints exist");
                    trace.push(AttachmentRecord {
                        child,
                        father,
                        kind,
                    });
                    in_urn.push(father);
                    out_urn.push(child);
                }
            } else {
                steps.push(StepKind::Old);
                let existing = digraph.node_count();
                // Initial vertex: uniform w.p. δ, else ∝ out-degree + 1
                // (mixture of the out-urn and a uniform draw).
                let source = if rng.gen::<f64>() < config.delta {
                    NodeId::new(rng.gen_range(0..existing))
                } else {
                    let out_total = out_urn.len();
                    let pref_mass = out_total as f64;
                    let unif_mass = existing as f64;
                    if rng.gen::<f64>() < pref_mass / (pref_mass + unif_mass) {
                        out_urn.sample(rng).expect("out-urn non-empty after seed")
                    } else {
                        NodeId::new(rng.gen_range(0..existing))
                    }
                };
                let j = config.old_edges.sample(rng);
                for _ in 0..j {
                    let (father, kind) = Self::choose_terminal(
                        config.gamma,
                        existing,
                        &in_urn,
                        digraph.total_in_degree(),
                        rng,
                    );
                    digraph.add_edge(source, father).expect("endpoints exist");
                    trace.push(AttachmentRecord {
                        child: source,
                        father,
                        kind,
                    });
                    in_urn.push(father);
                    out_urn.push(source);
                }
            }
        }

        Ok(CooperFrieze {
            digraph,
            trace,
            steps,
            config: config.clone(),
        })
    }

    /// Terminal choice: indegree-preferential w.p. `pref_prob`, uniform
    /// over the `candidates` oldest vertices otherwise. The preferential
    /// branch itself is the exact `∝ d(u)` mixture over the urn.
    fn choose_terminal<R: Rng + ?Sized>(
        pref_prob: f64,
        candidates: usize,
        in_urn: &UrnSampler,
        total_in_degree: usize,
        rng: &mut R,
    ) -> (NodeId, AttachmentKind) {
        debug_assert!(total_in_degree > 0, "seed guarantees indegree mass");
        if rng.gen::<f64>() < pref_prob {
            // The urn may contain tickets for vertices ≥ candidates only
            // when an Old step targeted a newer vertex; all urn tickets
            // reference existing vertices, which is all we require.
            let v = in_urn.sample(rng).expect("in-urn non-empty after seed");
            (v, AttachmentKind::Preferential)
        } else {
            (
                NodeId::new(rng.gen_range(0..candidates)),
                AttachmentKind::Uniform,
            )
        }
    }

    /// The parameters used to sample this graph.
    pub fn config(&self) -> &CooperFriezeConfig {
        &self.config
    }

    /// The evolving multigraph (edges point newer → chosen terminal for
    /// New steps; source → terminal for Old steps).
    pub fn digraph(&self) -> &EvolvingDigraph {
        &self.digraph
    }

    /// The per-edge attachment history.
    pub fn trace(&self) -> &AttachmentTrace {
        &self.trace
    }

    /// The sequence of procedures applied, in time order.
    pub fn steps(&self) -> &[StepKind] {
        &self.steps
    }

    /// Number of New steps taken (always `node_count − 2`).
    pub fn new_step_count(&self) -> usize {
        self.steps.iter().filter(|s| **s == StepKind::New).count()
    }

    /// Builds the unoriented view searching takes place in.
    pub fn undirected(&self) -> UndirectedCsr {
        UndirectedCsr::from_digraph(&self.digraph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;
    use nonsearch_graph::is_connected;

    #[test]
    fn reaches_exact_vertex_count_and_is_connected() {
        let mut rng = rng_from_seed(1);
        let cfg = CooperFriezeConfig::balanced(0.6).unwrap();
        let g = CooperFrieze::sample(300, &cfg, &mut rng).unwrap();
        assert_eq!(g.digraph().node_count(), 300);
        assert!(is_connected(&g.undirected()));
    }

    #[test]
    fn new_steps_equal_added_vertices() {
        let mut rng = rng_from_seed(2);
        let cfg = CooperFriezeConfig::balanced(0.5).unwrap();
        let g = CooperFrieze::sample(100, &cfg, &mut rng).unwrap();
        assert_eq!(g.new_step_count(), 98); // seed provides 2 vertices
    }

    #[test]
    fn alpha_one_with_single_edges_is_a_tree() {
        let mut rng = rng_from_seed(3);
        let cfg = CooperFriezeConfig::new(
            1.0,
            0.5,
            0.5,
            0.5,
            DiscreteDistribution::constant(1).unwrap(),
            DiscreteDistribution::constant(1).unwrap(),
        )
        .unwrap();
        let g = CooperFrieze::sample(80, &cfg, &mut rng).unwrap();
        assert_eq!(g.digraph().edge_count(), 79);
        assert!(g.steps().iter().all(|s| *s == StepKind::New));
    }

    #[test]
    fn old_steps_add_edges_but_not_vertices() {
        let mut rng = rng_from_seed(4);
        let cfg = CooperFriezeConfig::balanced(0.3).unwrap();
        let g = CooperFrieze::sample(100, &cfg, &mut rng).unwrap();
        let old_steps = g.steps().len() - g.new_step_count();
        assert!(old_steps > 0, "α = 0.3 should produce Old steps");
        // Seed edge + one edge per step (constant-1 distributions).
        assert_eq!(g.digraph().edge_count(), 1 + g.steps().len());
        assert_eq!(g.digraph().node_count(), 100);
    }

    #[test]
    fn multi_edge_steps_respect_distribution_bounds() {
        let mut rng = rng_from_seed(5);
        let cfg = CooperFriezeConfig::new(
            0.7,
            0.5,
            0.5,
            0.5,
            DiscreteDistribution::new(vec![0.5, 0.5]).unwrap(), // 1 or 2 edges
            DiscreteDistribution::constant(3).unwrap(),
        )
        .unwrap();
        let g = CooperFrieze::sample(200, &cfg, &mut rng).unwrap();
        let new_steps = g.new_step_count();
        let old_steps = g.steps().len() - new_steps;
        let edges = g.digraph().edge_count();
        assert!(edges >= 1 + new_steps + 3 * old_steps);
        assert!(edges <= 1 + 2 * new_steps + 3 * old_steps);
    }

    #[test]
    fn pure_preferential_concentrates_indegree() {
        // β = γ = 1 from the seed: vertex 1 is the only vertex with
        // positive indegree, so (as in Móri p = 1) it absorbs everything.
        let mut rng = rng_from_seed(6);
        let cfg = CooperFriezeConfig::new(
            1.0,
            1.0,
            1.0,
            0.5,
            DiscreteDistribution::constant(1).unwrap(),
            DiscreteDistribution::constant(1).unwrap(),
        )
        .unwrap();
        let g = CooperFrieze::sample(50, &cfg, &mut rng).unwrap();
        assert_eq!(g.digraph().in_degree(NodeId::from_label(1)), 49);
    }

    #[test]
    fn determinism_per_seed() {
        let cfg = CooperFriezeConfig::balanced(0.5).unwrap();
        let a = CooperFrieze::sample(60, &cfg, &mut rng_from_seed(7)).unwrap();
        let b = CooperFrieze::sample(60, &cfg, &mut rng_from_seed(7)).unwrap();
        assert_eq!(a.digraph(), b.digraph());
        assert_eq!(a.steps(), b.steps());
    }

    #[test]
    fn config_validation() {
        let one = DiscreteDistribution::constant(1).unwrap();
        assert!(CooperFriezeConfig::new(0.0, 0.5, 0.5, 0.5, one.clone(), one.clone()).is_err());
        assert!(CooperFriezeConfig::new(0.5, 1.5, 0.5, 0.5, one.clone(), one.clone()).is_err());
        assert!(CooperFriezeConfig::new(0.5, 0.5, -0.1, 0.5, one.clone(), one.clone()).is_err());
        assert!(CooperFriezeConfig::new(0.5, 0.5, 0.5, 2.0, one.clone(), one).is_err());
        assert!(CooperFriezeConfig::balanced(0.5).is_ok());
    }

    #[test]
    fn sample_too_small_rejected() {
        let cfg = CooperFriezeConfig::balanced(0.5).unwrap();
        assert!(CooperFrieze::sample(1, &cfg, &mut rng_from_seed(8)).is_err());
    }

    #[test]
    fn trace_records_every_edge() {
        let mut rng = rng_from_seed(9);
        let cfg = CooperFriezeConfig::balanced(0.4).unwrap();
        let g = CooperFrieze::sample(120, &cfg, &mut rng).unwrap();
        assert_eq!(g.trace().len(), g.digraph().edge_count());
    }
}
