//! The `xp lint` front end.
//!
//! Walks the workspace, runs every rule, prints a human summary, and
//! (under `--out`) writes the findings as JSON Lines through the
//! engine's record vocabulary: one `"type":"diagnostic"` record per
//! finding plus a `"type":"lint"` footer with the totals — both of
//! which `xp validate` checks structurally. Exit codes follow the
//! `xp profile-diff` convention: 0 clean, 1 unwaived findings, 2 usage
//! or I/O error.

use crate::rules::{lint_files, Diagnostic, LintReport, RULES};
use crate::walk::collect_workspace;
use nonsearch_engine::{JsonValue, DIAGNOSTIC_TYPE, LINT_TYPE};
use std::io::Write;
use std::path::PathBuf;

const USAGE: &str = "usage: xp lint [--root DIR] [--out FILE] [--rules]

Static analysis for the workspace's determinism contracts. Walks every
.rs file under DIR (default: the current directory), skipping target/,
vendor/, .git/, and fixtures/ trees, and checks six rules:

  epoch-wrap          u32::MAX epoch comparisons only in stamped.rs
  unsafe-confinement  unsafe only in the blessed modules; crate roots
                      declare forbid/deny(unsafe_code)
  determinism         no HashMap/HashSet in engine/search/core/corpus
  clock-env           Instant::now/SystemTime/env::var behind the obs seam
  alloc-free          no allocation in `// lint: alloc-free` functions
  record-schema       every *_TYPE record tag has an xp validate arm

Intentional findings carry an inline waiver on (or directly above) the
flagged line:

  // lint: allow(<rule>): <one-line reason>

Waived findings are reported but do not fail the run. A waiver with no
reason is itself a finding.

flags:
  --root DIR   lint the tree rooted at DIR instead of .
  --out FILE   write JSONL diagnostics (validatable by `xp validate`)
  --rules      print the rule table and exit

exit codes: 0 clean, 1 unwaived findings, 2 usage or I/O error";

/// Runs `xp lint` with `args` (everything after the subcommand).
/// Returns the process exit code.
pub fn main(args: &[String]) -> i32 {
    let mut root = PathBuf::from(".");
    let mut out: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            "--rules" => {
                for rule in RULES {
                    println!("{:<20} {}", rule.id, rule.contract);
                }
                return 0;
            }
            "--root" => match iter.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("xp lint: --root needs a directory\n{USAGE}");
                    return 2;
                }
            },
            "--out" => match iter.next() {
                Some(path) => out = Some(PathBuf::from(path)),
                None => {
                    eprintln!("xp lint: --out needs a file path\n{USAGE}");
                    return 2;
                }
            },
            other => {
                eprintln!("xp lint: unknown argument {other:?}\n{USAGE}");
                return 2;
            }
        }
    }
    let files = match collect_workspace(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("xp lint: cannot read {}: {e}", root.display());
            return 2;
        }
    };
    if files.is_empty() {
        eprintln!("xp lint: no .rs files under {}", root.display());
        return 2;
    }
    let report = lint_files(&files);
    if let Some(path) = &out {
        if let Err(e) = write_jsonl(path, &report) {
            eprintln!("xp lint: cannot write {}: {e}", path.display());
            return 2;
        }
    }
    for d in &report.diagnostics {
        if d.waived.is_none() {
            println!("{}:{}: [{}] {}", d.path, d.line, d.rule, d.message);
        }
    }
    println!(
        "lint: {} files, {} findings ({} waived), {} violations",
        report.files,
        report.diagnostics.len(),
        report.waived(),
        report.violations()
    );
    i32::from(report.violations() > 0)
}

/// One finding as a `"type":"diagnostic"` JSONL record.
fn diagnostic_record(d: &Diagnostic) -> JsonValue {
    JsonValue::object(vec![
        ("type", JsonValue::from(DIAGNOSTIC_TYPE)),
        ("rule", JsonValue::from(d.rule.as_str())),
        ("path", JsonValue::from(d.path.as_str())),
        ("line", JsonValue::from(d.line)),
        ("message", JsonValue::from(d.message.as_str())),
        ("waived", JsonValue::from(d.waived.is_some())),
        ("reason", JsonValue::from(d.waived.clone())),
    ])
}

/// The whole report as JSONL: diagnostics then the `"type":"lint"`
/// footer.
fn write_jsonl(path: &std::path::Path, report: &LintReport) -> std::io::Result<()> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    for d in &report.diagnostics {
        writeln!(file, "{}", diagnostic_record(d))?;
    }
    let footer = JsonValue::object(vec![
        ("type", JsonValue::from(LINT_TYPE)),
        ("files", JsonValue::from(report.files)),
        ("diagnostics", JsonValue::from(report.diagnostics.len())),
        ("waived", JsonValue::from(report.waived())),
        ("violations", JsonValue::from(report.violations())),
    ]);
    writeln!(file, "{footer}")?;
    file.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonsearch_engine::validate_jsonl;

    #[test]
    fn jsonl_report_round_trips_through_xp_validate() {
        let report = LintReport {
            files: 3,
            diagnostics: vec![
                Diagnostic {
                    rule: "determinism".into(),
                    path: "crates/core/src/x.rs".into(),
                    line: 4,
                    message: "HashMap in deterministic-aggregate code".into(),
                    waived: Some("keyed lookup only".into()),
                },
                Diagnostic {
                    rule: "clock-env".into(),
                    path: "crates/search/src/y.rs".into(),
                    line: 9,
                    message: "Instant::now outside the obs seam".into(),
                    waived: None,
                },
            ],
        };
        let path = std::env::temp_dir().join(format!("lint_cli_{}.jsonl", std::process::id()));
        write_jsonl(&path, &report).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let summary = validate_jsonl(&text).unwrap();
        assert_eq!(summary.diagnostics, 2);
        assert_eq!(summary.lints, 1);
        assert!(text.contains("\"violations\":1"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn usage_errors_exit_2() {
        let bad = vec!["--frobnicate".to_string()];
        assert_eq!(main(&bad), 2);
        let no_dir = vec!["--root".to_string()];
        assert_eq!(main(&no_dir), 2);
    }
}
