//! Deliberate violation: allocation inside an alloc-free function.

// lint: alloc-free
pub fn reset(buf: &mut Vec<u8>) {
    let spill = Vec::new();
    *buf = spill;
}
