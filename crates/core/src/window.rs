//! The equivalence window of Lemma 2 / Lemma 3.

use crate::theory::lemma3_window_end;
use nonsearch_graph::NodeId;

/// The vertex window `V = [[a+1, b]]` that is probabilistically
/// equivalent conditional on `E_{a,b}`, with the Lemma 3 sizing
/// `b = a + ⌊√(a−1)⌋`.
///
/// For Theorem 1 the window is anchored so that it *contains the target
/// vertex `n`*: taking `a = n − 1` makes `V = [[n, n + ⌊√(n−2)⌋]]`, a set
/// of `Θ(√n)` vertices the searcher cannot tell apart.
///
/// # Example
///
/// ```
/// use nonsearch_core::EquivalenceWindow;
///
/// let w = EquivalenceWindow::for_target(10_001);
/// assert_eq!(w.a(), 10_000);
/// assert!(w.contains_label(10_001));
/// assert_eq!(w.len(), 99); // ⌊√9999⌋
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EquivalenceWindow {
    a: usize,
    b: usize,
}

impl EquivalenceWindow {
    /// Window anchored at `a`: `V = [[a+1, a+⌊√(a−1)⌋]]`.
    ///
    /// # Panics
    ///
    /// Panics if `a < 2`.
    pub fn from_anchor(a: usize) -> EquivalenceWindow {
        EquivalenceWindow {
            a,
            b: lemma3_window_end(a),
        }
    }

    /// Window containing the target vertex `n` as its first element
    /// (anchor `a = n − 1`).
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn for_target(n: usize) -> EquivalenceWindow {
        assert!(n >= 3, "target must be at least 3");
        Self::from_anchor(n - 1)
    }

    /// A window with explicit bounds (for experiments that vary widths).
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ a ≤ b`.
    pub fn with_bounds(a: usize, b: usize) -> EquivalenceWindow {
        assert!(a >= 2 && b >= a, "window requires 2 ≤ a ≤ b");
        EquivalenceWindow { a, b }
    }

    /// The anchor `a`: all fathers must land at or before this label.
    pub fn a(&self) -> usize {
        self.a
    }

    /// The last window label `b`.
    pub fn b(&self) -> usize {
        self.b
    }

    /// Number of window vertices `|V| = b − a`.
    pub fn len(&self) -> usize {
        self.b - self.a
    }

    /// `true` if the window is empty (`b == a`).
    pub fn is_empty(&self) -> bool {
        self.b == self.a
    }

    /// `true` if one-based `label` lies in `[[a+1, b]]`.
    pub fn contains_label(&self, label: usize) -> bool {
        label > self.a && label <= self.b
    }

    /// The window vertices as [`NodeId`]s.
    pub fn members(&self) -> Vec<NodeId> {
        ((self.a + 1)..=self.b).map(NodeId::from_label).collect()
    }

    /// Smallest tree size that realizes the full window (`t ≥ b`).
    pub fn minimum_tree_size(&self) -> usize {
        self.b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchored_window_sizing() {
        let w = EquivalenceWindow::from_anchor(101);
        assert_eq!(w.a(), 101);
        assert_eq!(w.b(), 111);
        assert_eq!(w.len(), 10);
        assert!(!w.is_empty());
    }

    #[test]
    fn target_window_contains_target_first() {
        let w = EquivalenceWindow::for_target(1000);
        assert_eq!(w.a(), 999);
        assert!(w.contains_label(1000));
        assert!(!w.contains_label(999));
        assert_eq!(w.members()[0], NodeId::from_label(1000));
    }

    #[test]
    fn window_scales_like_sqrt_n() {
        let small = EquivalenceWindow::for_target(1_000).len() as f64;
        let large = EquivalenceWindow::for_target(100_000).len() as f64;
        let ratio = large / small;
        assert!((ratio - 10.0).abs() < 0.5, "ratio = {ratio}");
    }

    #[test]
    fn membership_bounds() {
        let w = EquivalenceWindow::with_bounds(5, 8);
        assert!(!w.contains_label(5));
        assert!(w.contains_label(6));
        assert!(w.contains_label(8));
        assert!(!w.contains_label(9));
        assert_eq!(w.members().len(), 3);
        assert_eq!(w.minimum_tree_size(), 8);
    }

    #[test]
    fn empty_window_allowed_explicitly() {
        let w = EquivalenceWindow::with_bounds(4, 4);
        assert!(w.is_empty());
        assert!(w.members().is_empty());
    }

    #[test]
    #[should_panic(expected = "2 ≤ a ≤ b")]
    fn invalid_bounds_panic() {
        let _ = EquivalenceWindow::with_bounds(8, 5);
    }
}
