//! `nonsearch` — a reproduction of *"Non-Searchability of Random
//! Scale-Free Graphs"* (Duchon, Eggemann, Hanusse; AlgoTel/PODC 2007).
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`graph`] — evolving directed multigraphs + static undirected views.
//! * [`generators`] — Móri, Cooper–Frieze, Barabási–Albert, configuration
//!   model, Kleinberg lattice and friends, all seed-deterministic and
//!   provenance-recording.
//! * [`search`] — the paper's weak/strong local-knowledge oracles and a
//!   suite of distributed search algorithms.
//! * [`analysis`] — statistics, power-law fitting, distances, regression.
//! * [`core`] — the paper's contribution: vertex equivalence, the event
//!   `E_{a,b}`, Lemma 1/3 machinery and searchability certification.
//! * [`engine`] — the deterministic parallel Monte-Carlo trial engine,
//!   structured run records (JSONL/CSV), and the `xp` CLI plumbing.
//! * [`corpus`] — the persistent graph-ensemble store: binary `.nsg`
//!   CSR files, manifest-indexed corpus directories, deterministic
//!   sharded building, degree-preserving null-model variants, and
//!   corpus-backed trial-graph sources.
//!
//! # Quickstart
//!
//! ```
//! use nonsearch::core::{theorem1_weak_bound, EquivalenceWindow};
//! use nonsearch::generators::{rng_from_seed, MoriTree};
//! use nonsearch::graph::NodeId;
//! use nonsearch::search::{run_weak, HighDegreeGreedy, SearchTask};
//!
//! // Sample a Móri tree and search for the newest vertex.
//! let mut rng = rng_from_seed(2007);
//! let tree = MoriTree::sample(4096, 0.5, &mut rng)?;
//! let graph = tree.undirected();
//! let task = SearchTask::new(NodeId::from_label(1), NodeId::from_label(4096));
//! let outcome = run_weak(&graph, &task, &mut HighDegreeGreedy::new(), &mut rng)?;
//! assert!(outcome.found);
//!
//! // The paper's lower bound says ANY weak-model algorithm pays Ω(√n).
//! let bound = theorem1_weak_bound(4096, 0.5)?;
//! assert!(outcome.requests as f64 >= bound);
//!
//! // The un-distinguishable window behind that bound:
//! let w = EquivalenceWindow::for_target(4096);
//! assert!(w.len() >= 63); // Θ(√n) equivalent vertices
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub use nonsearch_analysis as analysis;
pub use nonsearch_core as core;
pub use nonsearch_corpus as corpus;
pub use nonsearch_engine as engine;
pub use nonsearch_generators as generators;
pub use nonsearch_graph as graph;
pub use nonsearch_search as search;
