//! End-to-end integration: the full Theorem 1 pipeline — generate,
//! search, bound, certify — across crate boundaries.

use nonsearch::core::{
    certify, lemma1_lower_bound, mori_event_probability_exact, theorem1_weak_bound,
    BoundComparison, CertifyConfig, EquivalenceWindow, MergedMoriModel,
};
use nonsearch::generators::{rng_from_seed, MergedMori, MoriTree};
use nonsearch::graph::NodeId;
use nonsearch::search::{run_weak, SearchTask, SearcherKind, SuccessCriterion};

#[test]
fn lower_bound_never_exceeds_any_measured_searcher() {
    // A correct lower bound must sit below every algorithm's measured
    // expectation. Average over trials for stability.
    let n = 2048;
    let p = 0.5;
    let bound = theorem1_weak_bound(n, p).unwrap();
    let trials = 8;
    for kind in SearcherKind::all() {
        let mut total = 0usize;
        for t in 0..trials {
            let mut rng = rng_from_seed(1000 + t);
            let tree = MoriTree::sample(n, p, &mut rng).unwrap();
            let graph = tree.undirected();
            let task =
                SearchTask::new(NodeId::from_label(1), NodeId::from_label(n)).with_budget(100 * n);
            let mut searcher = kind.build();
            let outcome = run_weak(&graph, &task, &mut *searcher, &mut rng).unwrap();
            assert!(outcome.found, "{kind} failed on a tree with huge budget");
            total += outcome.requests;
        }
        let mean = total as f64 / trials as f64;
        let cmp = BoundComparison {
            n,
            bound,
            measured: mean,
        };
        assert!(cmp.holds(), "{kind}: {cmp}");
    }
}

#[test]
fn theorem1_holds_for_merged_graphs_too() {
    let n = 1024;
    let (p, m) = (0.4, 3);
    let bound = theorem1_weak_bound(n, p).unwrap();
    let mut rng = rng_from_seed(5);
    let mut total = 0usize;
    let trials = 6;
    for _ in 0..trials {
        let mori = MergedMori::sample(n, m, p, &mut rng).unwrap();
        let graph = mori.undirected();
        let task =
            SearchTask::new(NodeId::from_label(1), NodeId::from_label(n)).with_budget(100 * n * m);
        let mut searcher = SearcherKind::HighDegree.build();
        let outcome = run_weak(&graph, &task, &mut *searcher, &mut rng).unwrap();
        assert!(outcome.found);
        total += outcome.requests;
    }
    let mean = total as f64 / trials as f64;
    assert!(
        mean >= bound,
        "merged Móri m={m}: mean {mean} below bound {bound}"
    );
}

#[test]
fn certification_exponent_respects_the_theory() {
    // Small sweep; the best exponent should not sit meaningfully below
    // the theoretical 1/2 (sampling noise tolerance 0.12).
    let model = MergedMoriModel { p: 0.5, m: 1 };
    let config = CertifyConfig {
        sizes: vec![256, 512, 1024, 2048],
        trials: 10,
        seed: 99,
        searchers: SearcherKind::informed().to_vec(),
        criterion: SuccessCriterion::DiscoverTarget,
        budget_multiplier: 100,
        threads: 0,
        ..CertifyConfig::default()
    };
    let report = certify(&model, &config);
    let best = report.best_exponent().expect("fit exists");
    assert!(
        best > 0.5 - 0.12,
        "best exponent {best} violates the Ω(n^0.5) claim"
    );
}

#[test]
fn window_probability_and_lemma1_compose() {
    let n = 4096;
    let p = 0.7;
    let window = EquivalenceWindow::for_target(n);
    let prob = mori_event_probability_exact(window.a(), window.b(), p).unwrap();
    let via_lemma = lemma1_lower_bound(window.len(), prob);
    let packaged = theorem1_weak_bound(n, p).unwrap();
    assert!((via_lemma - packaged).abs() < 1e-12);
}

#[test]
fn neighbor_criterion_is_never_harder() {
    let n = 1024;
    let mut rng = rng_from_seed(17);
    let tree = MoriTree::sample(n, 0.5, &mut rng).unwrap();
    let graph = tree.undirected();
    for kind in [SearcherKind::BfsFlood, SearcherKind::HighDegree] {
        let base =
            SearchTask::new(NodeId::from_label(1), NodeId::from_label(n)).with_budget(100 * n);
        let mut a = kind.build();
        let strict = run_weak(&graph, &base, &mut *a, &mut rng).unwrap();
        let relaxed_task = base.with_criterion(SuccessCriterion::ReachNeighbor);
        let mut b = kind.build();
        let relaxed = run_weak(&graph, &relaxed_task, &mut *b, &mut rng).unwrap();
        assert!(relaxed.requests <= strict.requests, "{kind}");
    }
}
