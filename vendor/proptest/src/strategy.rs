//! Value-generation strategies.
//!
//! A [`Strategy`] deterministically maps an RNG state to a value. Unlike
//! upstream proptest there is no value tree / shrinking: `sample` returns
//! the final value directly.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Generates values of type [`Strategy::Value`] from a [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to build a dependent strategy,
    /// then samples that.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Filters generated values; sampling retries (boundedly) until
    /// `pred` accepts one.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// Identity hook used by the `proptest!` macro to type-check strategy
/// expressions with a clear error message.
#[doc(hidden)]
pub fn __accept_strategy<S: Strategy>(s: S) -> S {
    s
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.whence);
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        S::sample(self, rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty => $in64:ident),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.$in64(self.start as i128, self.end as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.$in64(*self.start() as i128, *self.end() as i128 + 1) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(
    u8 => int_in, u16 => int_in, u32 => int_in, u64 => int_in, usize => int_in,
    i8 => int_in, i16 => int_in, i32 => int_in, i64 => int_in, isize => int_in
);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                if v >= self.end { self.start } else { v }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_in_bounds() {
        let mut rng = TestRng::deterministic("strategy::tests::ranges");
        for _ in 0..500 {
            let v = (3usize..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..2.0).sample(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = (-100i32..=100).sample(&mut rng);
            assert!((-100..=100).contains(&i));
        }
    }

    #[test]
    fn flat_map_passes_dependency() {
        let strat = (1usize..10).prop_flat_map(|n| (Just(n), 0..n));
        let mut rng = TestRng::deterministic("strategy::tests::flat_map");
        for _ in 0..200 {
            let (n, k) = strat.sample(&mut rng);
            assert!(k < n);
        }
    }

    #[test]
    fn vec_and_hash_set_sizes() {
        let mut rng = TestRng::deterministic("strategy::tests::collections");
        for _ in 0..100 {
            let v = crate::collection::vec(0usize..5, 2..9).sample(&mut rng);
            assert!((2..9).contains(&v.len()));
            let s = crate::collection::hash_set(0i32..1000, 2..9).sample(&mut rng);
            assert!(s.len() >= 2 && s.len() < 9);
        }
    }
}
