//! Sarshar–Boykin–Roychowdhury percolation search.
//!
//! The related-work protocol for power-law P2P networks: contents are
//! replicated along a short random walk from their owner, queries are
//! implanted along a random walk from the requester, and the query is
//! then spread by *bond percolation* (each edge forwards independently
//! with probability `q`). On power-law graphs, percolation above the
//! (very low) threshold reaches the high-degree core, so walk-replicated
//! content is found with sublinear message cost.

use crate::{Result, SearchError, StampedNodeSet};
use nonsearch_graph::{NodeId, UndirectedCsr};
use rand::{Rng, RngCore};
use std::collections::VecDeque;

/// Parameters of a percolation search run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PercolationConfig {
    /// Length of the content-replication random walk from the owner.
    pub replication_walk: usize,
    /// Length of the query-implantation random walk from the requester.
    pub query_walk: usize,
    /// Bond-percolation forwarding probability `q ∈ [0, 1]`.
    pub edge_probability: f64,
}

impl PercolationConfig {
    // Internal parameter check used by `percolation_search`.
    fn check(&self) -> bool {
        self.edge_probability.is_finite() && (0.0..=1.0).contains(&self.edge_probability)
    }
}

/// Result of one percolation search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PercolationOutcome {
    /// `true` if the percolating query reached a replica.
    pub found: bool,
    /// Total messages: walk steps plus activated edge transmissions.
    pub messages: usize,
    /// Number of distinct vertices holding a replica.
    pub replicas: usize,
    /// Number of distinct vertices the query reached.
    pub reached: usize,
}

/// Reusable state for [`percolation_search_in`]: dense stamped vertex
/// sets (replica holders, query-reached) plus the broadcast queue and
/// walk buffer, all reset in O(1) between runs — the same epoch trick
/// as [`SearchScratch`](crate::SearchScratch).
#[derive(Debug, Clone, Default)]
pub struct PercolationScratch {
    replicas: StampedNodeSet,
    reached: StampedNodeSet,
    implanted: Vec<NodeId>,
    queue: VecDeque<NodeId>,
}

impl PercolationScratch {
    /// Creates an empty scratch; buffers grow to the graph size on
    /// first use and are reused from then on.
    pub fn new() -> Self {
        Self::default()
    }

    fn begin(&mut self, nodes: usize) {
        self.replicas.clear();
        self.replicas.reserve(nodes);
        self.reached.clear();
        self.reached.reserve(nodes);
        self.implanted.clear();
        self.queue.clear();
        // Both hold distinct vertices only, so `nodes` bounds them.
        if self.implanted.capacity() < nodes {
            self.implanted.reserve(nodes);
        }
        if self.queue.capacity() < nodes {
            self.queue.reserve(nodes);
        }
    }
}

/// Runs one percolation search of content owned by `owner` from
/// `requester` with a private, per-call [`PercolationScratch`]. Sweeps
/// should hold a scratch and call [`percolation_search_in`].
///
/// # Errors
///
/// Returns [`SearchError::TaskOutOfBounds`] if either vertex is outside
/// the graph and [`SearchError::InvalidParameter`] if
/// `edge_probability ∉ [0, 1]`.
pub fn percolation_search(
    graph: &UndirectedCsr,
    owner: NodeId,
    requester: NodeId,
    config: &PercolationConfig,
    rng: &mut dyn RngCore,
) -> Result<PercolationOutcome> {
    percolation_search_in(
        &mut PercolationScratch::new(),
        graph,
        owner,
        requester,
        config,
        rng,
    )
}

/// [`percolation_search`] on a caller-owned scratch: identical
/// outcomes and RNG consumption, but the vertex sets and queues are
/// reused across runs instead of reallocated.
///
/// # Errors
///
/// Same contract as [`percolation_search`].
pub fn percolation_search_in(
    scratch: &mut PercolationScratch,
    graph: &UndirectedCsr,
    owner: NodeId,
    requester: NodeId,
    config: &PercolationConfig,
    rng: &mut dyn RngCore,
) -> Result<PercolationOutcome> {
    for v in [owner, requester] {
        if v.index() >= graph.node_count() {
            return Err(SearchError::TaskOutOfBounds {
                vertex: v,
                node_count: graph.node_count(),
            });
        }
    }
    if !config.check() {
        return Err(SearchError::InvalidParameter {
            name: "edge_probability",
            value: config.edge_probability.to_string(),
        });
    }
    scratch.begin(graph.node_count());
    let mut messages = 0usize;

    // Phase 1: replicate content along a random walk from the owner.
    // Only membership matters, so the set needs no ordered copy.
    random_walk_into(
        graph,
        owner,
        config.replication_walk,
        rng,
        &mut messages,
        &mut scratch.replicas,
        None,
    );

    // Phase 2: implant the query along a random walk from the
    // requester, keeping first-visit order for the broadcast seeds.
    random_walk_into(
        graph,
        requester,
        config.query_walk,
        rng,
        &mut messages,
        &mut scratch.reached,
        Some(&mut scratch.implanted),
    );

    // Phase 3: bond-percolation broadcast from every implanted vertex.
    // First-visit order keeps the RNG consumption deterministic.
    let mut found = scratch
        .implanted
        .iter()
        .any(|&v| scratch.replicas.contains(v));
    scratch.queue.extend(scratch.implanted.iter().copied());
    while let Some(v) = scratch.queue.pop_front() {
        for (w, _) in graph.incident_edges(v) {
            if rng.gen::<f64>() < config.edge_probability {
                messages += 1;
                if scratch.reached.insert(w) {
                    found |= scratch.replicas.contains(w);
                    scratch.queue.push_back(w);
                }
            }
        }
    }

    Ok(PercolationOutcome {
        found,
        messages,
        replicas: scratch.replicas.len(),
        reached: scratch.reached.len(),
    })
}

/// Walks `steps` uniform random hops from `start`, inserting visited
/// vertices into `set` (and appending first visits to `order`, when
/// given), charging one message per hop.
fn random_walk_into(
    graph: &UndirectedCsr,
    start: NodeId,
    steps: usize,
    rng: &mut dyn RngCore,
    messages: &mut usize,
    set: &mut StampedNodeSet,
    mut order: Option<&mut Vec<NodeId>>,
) {
    let mut visit = |v: NodeId, set: &mut StampedNodeSet| {
        if set.insert(v) {
            if let Some(order) = order.as_deref_mut() {
                order.push(v);
            }
        }
    };
    visit(start, set);
    let mut current = start;
    for _ in 0..steps {
        let degree = graph.degree(current);
        if degree == 0 {
            break;
        }
        let (next, _) = graph.incident(current)[rng.gen_range(0..degree)];
        *messages += 1;
        visit(next, set);
        current = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    fn complete(n: usize) -> UndirectedCsr {
        let edges = (0..n).flat_map(|u| ((u + 1)..n).map(move |v| (u, v)));
        UndirectedCsr::from_edges(n, edges).unwrap()
    }

    #[test]
    fn full_percolation_always_finds() {
        let g = complete(10);
        let cfg = PercolationConfig {
            replication_walk: 0,
            query_walk: 0,
            edge_probability: 1.0,
        };
        let o = percolation_search(&g, NodeId::new(3), NodeId::new(7), &cfg, &mut rng()).unwrap();
        assert!(o.found);
        assert_eq!(o.reached, 10);
    }

    #[test]
    fn zero_percolation_fails_unless_colocated() {
        let g = complete(10);
        let cfg = PercolationConfig {
            replication_walk: 0,
            query_walk: 0,
            edge_probability: 0.0,
        };
        let o = percolation_search(&g, NodeId::new(3), NodeId::new(7), &cfg, &mut rng()).unwrap();
        assert!(!o.found);
        assert_eq!(o.messages, 0);
        // Same vertex: the implanted query already sits on the replica.
        let o = percolation_search(&g, NodeId::new(3), NodeId::new(3), &cfg, &mut rng()).unwrap();
        assert!(o.found);
    }

    #[test]
    fn replication_improves_success() {
        // Sub-critical percolation on K20: the query cluster is small, so
        // success hinges on how many vertices hold replicas.
        let g = complete(20);
        let mut r = rng();
        let run = |walk: usize, r: &mut ChaCha8Rng| {
            let cfg = PercolationConfig {
                replication_walk: walk,
                query_walk: 0,
                edge_probability: 0.04,
            };
            (0..300)
                .filter(|_| {
                    percolation_search(&g, NodeId::new(0), NodeId::new(10), &cfg, r)
                        .unwrap()
                        .found
                })
                .count()
        };
        let without = run(0, &mut r);
        let with = run(40, &mut r);
        assert!(
            with > without,
            "with replication {with} vs without {without}"
        );
    }

    #[test]
    fn message_count_reflects_activity() {
        let g = complete(8);
        let cfg = PercolationConfig {
            replication_walk: 5,
            query_walk: 5,
            edge_probability: 1.0,
        };
        let o = percolation_search(&g, NodeId::new(0), NodeId::new(1), &cfg, &mut rng()).unwrap();
        // 10 walk messages plus one per activated edge endpoint scan.
        assert!(o.messages >= 10);
    }

    #[test]
    fn validation() {
        let g = complete(4);
        let bad = PercolationConfig {
            replication_walk: 0,
            query_walk: 0,
            edge_probability: 1.5,
        };
        assert!(percolation_search(&g, NodeId::new(0), NodeId::new(1), &bad, &mut rng()).is_err());
        let cfg = PercolationConfig {
            replication_walk: 0,
            query_walk: 0,
            edge_probability: 0.5,
        };
        assert!(percolation_search(&g, NodeId::new(9), NodeId::new(1), &cfg, &mut rng()).is_err());
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        let g = complete(12);
        let cfg = PercolationConfig {
            replication_walk: 6,
            query_walk: 4,
            edge_probability: 0.3,
        };
        let mut scratch = PercolationScratch::new();
        for seed in 0..10u64 {
            let mut r1 = ChaCha8Rng::seed_from_u64(seed);
            let pooled = percolation_search_in(
                &mut scratch,
                &g,
                NodeId::new(1),
                NodeId::new(8),
                &cfg,
                &mut r1,
            )
            .unwrap();
            let mut r2 = ChaCha8Rng::seed_from_u64(seed);
            let fresh =
                percolation_search(&g, NodeId::new(1), NodeId::new(8), &cfg, &mut r2).unwrap();
            assert_eq!(pooled, fresh, "seed {seed}");
        }
    }
}
