//! Kleinberg's greedy geographic routing on the small-world lattice.
//!
//! This is the *positive* contrast in the paper's introduction: with
//! lattice coordinates as labels (a knowledge model richer than the
//! strong model — each vertex knows its neighbors' positions), greedy
//! routing takes `O(log² n)` steps when `r = 2` on a 2-D grid and
//! polynomially many otherwise \[Kle00\].

use nonsearch_generators::KleinbergGrid;
use nonsearch_graph::NodeId;

/// Result of one greedy route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GreedyRouteOutcome {
    /// `true` if the target was reached.
    pub reached: bool,
    /// Hops taken (edge traversals).
    pub steps: usize,
    /// `true` if routing stopped because no neighbor improved the
    /// distance (cannot happen on a full lattice, kept for safety).
    pub stuck: bool,
}

/// Routes greedily from `start` to `target`: each hop moves to the
/// neighbor closest (in Manhattan distance) to the target, stopping at
/// `max_steps`.
///
/// # Panics
///
/// Panics if `start` or `target` is outside the grid.
pub fn greedy_route(
    grid: &KleinbergGrid,
    start: NodeId,
    target: NodeId,
    max_steps: usize,
) -> GreedyRouteOutcome {
    let graph = grid.graph();
    assert!(start.index() < graph.node_count(), "start outside grid");
    assert!(target.index() < graph.node_count(), "target outside grid");
    let mut current = start;
    let mut steps = 0;
    while current != target {
        if steps >= max_steps {
            return GreedyRouteOutcome {
                reached: false,
                steps,
                stuck: false,
            };
        }
        let here = grid.manhattan(current, target);
        let best = graph
            .neighbors(current)
            .min_by_key(|&v| grid.manhattan(v, target))
            .expect("lattice vertices have neighbors");
        if grid.manhattan(best, target) >= here {
            return GreedyRouteOutcome {
                reached: false,
                steps,
                stuck: true,
            };
        }
        current = best;
        steps += 1;
    }
    GreedyRouteOutcome {
        reached: true,
        steps,
        stuck: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonsearch_generators::{rng_from_seed, GridCoord, KleinbergGrid};

    #[test]
    fn routes_on_bare_lattice_take_manhattan_distance() {
        let mut rng = rng_from_seed(1);
        let grid = KleinbergGrid::sample(8, 2.0, 0, &mut rng).unwrap();
        let a = grid.node_at(GridCoord { row: 0, col: 0 });
        let b = grid.node_at(GridCoord { row: 7, col: 7 });
        let o = greedy_route(&grid, a, b, 10_000);
        assert!(o.reached);
        assert_eq!(o.steps, 14); // exactly the Manhattan distance
    }

    #[test]
    fn long_range_links_only_help() {
        let mut rng = rng_from_seed(2);
        let grid = KleinbergGrid::sample(16, 2.0, 2, &mut rng).unwrap();
        let a = grid.node_at(GridCoord { row: 0, col: 0 });
        let b = grid.node_at(GridCoord { row: 15, col: 15 });
        let o = greedy_route(&grid, a, b, 10_000);
        assert!(o.reached);
        assert!(o.steps <= 30, "greedy can never exceed Manhattan distance");
    }

    #[test]
    fn zero_distance_routes_instantly() {
        let mut rng = rng_from_seed(3);
        let grid = KleinbergGrid::sample(4, 1.0, 1, &mut rng).unwrap();
        let v = grid.node_at(GridCoord { row: 2, col: 2 });
        let o = greedy_route(&grid, v, v, 10);
        assert!(o.reached);
        assert_eq!(o.steps, 0);
    }

    #[test]
    fn step_budget_respected() {
        let mut rng = rng_from_seed(4);
        let grid = KleinbergGrid::sample(10, 2.0, 0, &mut rng).unwrap();
        let a = grid.node_at(GridCoord { row: 0, col: 0 });
        let b = grid.node_at(GridCoord { row: 9, col: 9 });
        let o = greedy_route(&grid, a, b, 3);
        assert!(!o.reached);
        assert_eq!(o.steps, 3);
    }

    #[test]
    fn never_stuck_on_full_lattice() {
        let mut rng = rng_from_seed(5);
        let grid = KleinbergGrid::sample(6, 0.5, 1, &mut rng).unwrap();
        for s in 0..36 {
            let o = greedy_route(&grid, NodeId::new(s), NodeId::new(35 - s), 1000);
            assert!(o.reached);
            assert!(!o.stuck);
        }
    }
}
