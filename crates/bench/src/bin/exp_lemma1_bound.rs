//! E6 — Lemma 1 composition: `|V|·P(E)/2` against measured search cost.
//!
//! Thin wrapper over the registered `xp lemma1-bound` experiment; the
//! implementation lives in `nonsearch_bench::experiments`.

fn main() {
    nonsearch_bench::experiments::run_legacy("lemma1-bound");
}
