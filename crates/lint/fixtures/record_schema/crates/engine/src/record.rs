//! Deliberate violation: a record tag with no validate arm.

pub const CELL_TYPE: &str = "cell";
pub const ROGUE_TYPE: &str = "rogue";
