//! Single-pass (Welford) summary statistics.
//!
//! [`SampleStats`](crate::SampleStats) stores and sorts every sample,
//! which is fine for a dozen trials but wasteful for the engine's large
//! sweeps. [`StreamingStats`] keeps only O(1) state — count, mean, the
//! centered second moment, min and max — and still reproduces the
//! two-pass mean/variance/CI to floating-point accuracy. Accumulators
//! from disjoint shards can be [`merge`](StreamingStats::merge)d with
//! Chan et al.'s parallel update.

use crate::stats::SampleStats;
use std::fmt;

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use nonsearch_analysis::StreamingStats;
///
/// let mut s = StreamingStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingStats {
    count: u64,
    mean: f64,
    /// Sum of squared deviations from the running mean (Welford's `M2`).
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for StreamingStats {
    /// Same as [`StreamingStats::new`] (empty, with `min = +∞` and
    /// `max = −∞` so the first observation always replaces them).
    fn default() -> StreamingStats {
        StreamingStats::new()
    }
}

impl StreamingStats {
    /// An empty accumulator.
    pub fn new() -> StreamingStats {
        StreamingStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Accumulates every value of `data`.
    pub fn from_slice(data: &[f64]) -> StreamingStats {
        data.iter().copied().collect()
    }

    /// Adds one observation.
    ///
    /// Non-finite observations poison the moments (they propagate as
    /// NaN/∞, exactly like summing them would); callers that need
    /// rejection should filter first, as [`SampleStats`] does.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Folds another accumulator into this one (Chan et al.'s parallel
    /// variance update). Merging shard accumulators in a fixed order is
    /// deterministic; the result agrees with one sequential pass to
    /// floating-point accuracy (not bit-exactly).
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// `true` when nothing has been accumulated.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased (n−1) sample variance; zero for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count > 1 {
            self.m2 / (self.count - 1) as f64
        } else {
            0.0
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean (`0.0` when empty).
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Half-width of the normal-approximation 95% confidence interval
    /// (`1.96 · SE`), matching [`SampleStats::ci95_half_width`].
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_error()
    }

    /// Minimum observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl FromIterator<f64> for StreamingStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> StreamingStats {
        let mut s = StreamingStats::new();
        s.extend(iter);
        s
    }
}

impl Extend<f64> for StreamingStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl From<&SampleStats> for StreamingStats {
    /// Rebuilds a streaming accumulator from a two-pass summary by
    /// replaying its (sorted) samples.
    fn from(stats: &SampleStats) -> StreamingStats {
        stats.samples_sorted().iter().copied().collect()
    }
}

impl fmt::Display for StreamingStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean={:.4} ±{:.4} (95% CI, n={})",
            self.mean,
            self.ci95_half_width(),
            self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!(
            (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs())),
            "{a} vs {b}"
        );
    }

    #[test]
    fn matches_two_pass_sample_stats() {
        let data: Vec<f64> = (0..500).map(|i| ((i * 37) % 101) as f64 * 0.25).collect();
        let two_pass = SampleStats::from_slice(&data).unwrap();
        let streaming = StreamingStats::from_slice(&data);
        assert_eq!(streaming.count() as usize, two_pass.count());
        assert_close(streaming.mean(), two_pass.mean());
        assert_close(streaming.variance(), two_pass.variance());
        assert_close(streaming.std_error(), two_pass.std_error());
        assert_close(streaming.ci95_half_width(), two_pass.ci95_half_width());
        assert_eq!(streaming.min(), two_pass.min());
        assert_eq!(streaming.max(), two_pass.max());
    }

    #[test]
    fn from_sample_stats_round_trips_moments() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let two_pass = SampleStats::from_slice(&data).unwrap();
        let streaming = StreamingStats::from(&two_pass);
        assert_close(streaming.mean(), 5.0);
        assert_close(streaming.variance(), 32.0 / 7.0);
    }

    #[test]
    fn empty_and_singleton() {
        let empty = StreamingStats::new();
        assert_eq!(StreamingStats::default(), empty);
        assert_eq!(empty.min(), f64::INFINITY);
        assert_eq!(empty.max(), f64::NEG_INFINITY);
        assert!(empty.is_empty());
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.variance(), 0.0);
        assert_eq!(empty.ci95_half_width(), 0.0);

        let mut one = StreamingStats::new();
        one.push(3.5);
        assert_eq!(one.mean(), 3.5);
        assert_eq!(one.variance(), 0.0);
        assert_eq!(one.min(), 3.5);
        assert_eq!(one.max(), 3.5);
    }

    #[test]
    fn merge_agrees_with_sequential() {
        let data: Vec<f64> = (0..321).map(|i| (i as f64).sin() * 10.0 + 5.0).collect();
        let sequential = StreamingStats::from_slice(&data);
        for split in [1usize, 7, 160, 320] {
            let mut merged = StreamingStats::from_slice(&data[..split]);
            merged.merge(&StreamingStats::from_slice(&data[split..]));
            assert_eq!(merged.count(), sequential.count());
            assert_close(merged.mean(), sequential.mean());
            assert_close(merged.variance(), sequential.variance());
            assert_eq!(merged.min(), sequential.min());
            assert_eq!(merged.max(), sequential.max());
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = StreamingStats::from_slice(&[1.0, 2.0]);
        let before = s;
        s.merge(&StreamingStats::new());
        assert_eq!(s, before);
        let mut empty = StreamingStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn display_mentions_ci() {
        let s = StreamingStats::from_slice(&[1.0, 2.0]);
        assert!(s.to_string().contains("95% CI"));
    }
}
