//! E4 — Lemma 3: with `b = a + ⌊√(a−1)⌋`, `P(E_{a,b}) ≥ e^{−(1−p)}`.
//!
//! Thin wrapper over the registered `xp lemma3-event` experiment; the
//! implementation lives in `nonsearch_bench::experiments`.

fn main() {
    nonsearch_bench::experiments::run_legacy("lemma3-event");
}
