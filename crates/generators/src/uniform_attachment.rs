//! Pure uniform attachment (random recursive trees and their `m`-out
//! generalization).
//!
//! The `p = 0` end of the paper's attachment spectrum: every arriving
//! vertex picks its target(s) uniformly among existing vertices. With
//! `m = 1` this is the classic random recursive tree.

use crate::{AttachmentKind, AttachmentRecord, AttachmentTrace, GeneratorError, Result};
use nonsearch_graph::{EvolvingDigraph, NodeId, UndirectedCsr};
use rand::Rng;

/// A sampled uniform-attachment graph with construction provenance.
///
/// Vertex `t` sends `min(m, t−1)` edges to *distinct* uniformly chosen
/// older vertices, so the graph is always connected and simple.
///
/// # Example
///
/// ```
/// use nonsearch_generators::{rng_from_seed, UniformAttachment};
/// use nonsearch_graph::GraphProperties;
///
/// let mut rng = rng_from_seed(1);
/// let ua = UniformAttachment::sample(64, 1, &mut rng)?;
/// assert!(ua.undirected().is_tree());
/// # Ok::<(), nonsearch_generators::GeneratorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct UniformAttachment {
    digraph: EvolvingDigraph,
    trace: AttachmentTrace,
    m: usize,
}

impl UniformAttachment {
    /// Samples a uniform-attachment graph on `n ≥ 2` vertices with up to
    /// `m ≥ 1` edges per arrival.
    ///
    /// # Errors
    ///
    /// Returns [`GeneratorError::InvalidParameter`] if `m == 0` and
    /// [`GeneratorError::TooSmall`] if `n < 2`.
    pub fn sample<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Result<UniformAttachment> {
        if m == 0 {
            return Err(GeneratorError::invalid("m", 0usize, "a positive integer"));
        }
        if n < 2 {
            return Err(GeneratorError::TooSmall {
                requested: n,
                minimum: 2,
            });
        }
        let mut digraph = EvolvingDigraph::with_capacity(n, m * n);
        let mut trace = AttachmentTrace::with_capacity(m * n);
        digraph.add_node();
        let mut chosen: Vec<usize> = Vec::with_capacity(m);
        for t in 1..n {
            let child = digraph.add_node();
            let quota = m.min(t);
            chosen.clear();
            while chosen.len() < quota {
                let candidate = rng.gen_range(0..t);
                if !chosen.contains(&candidate) {
                    chosen.push(candidate);
                }
            }
            for &target in &chosen {
                let father = NodeId::new(target);
                digraph.add_edge(child, father).expect("endpoints exist");
                trace.push(AttachmentRecord {
                    child,
                    father,
                    kind: AttachmentKind::Uniform,
                });
            }
        }
        Ok(UniformAttachment { digraph, trace, m })
    }

    /// Edges requested per arriving vertex.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The evolving digraph (edges point newer → older).
    pub fn digraph(&self) -> &EvolvingDigraph {
        &self.digraph
    }

    /// The attachment history.
    pub fn trace(&self) -> &AttachmentTrace {
        &self.trace
    }

    /// Builds the unoriented view searching takes place in.
    pub fn undirected(&self) -> UndirectedCsr {
        UndirectedCsr::from_digraph(&self.digraph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;
    use nonsearch_graph::{is_connected, GraphProperties};

    #[test]
    fn tree_for_m1() {
        let mut rng = rng_from_seed(1);
        let ua = UniformAttachment::sample(100, 1, &mut rng).unwrap();
        assert!(ua.undirected().is_tree());
        assert_eq!(ua.trace().len(), 99);
    }

    #[test]
    fn m_edges_once_enough_vertices_exist() {
        let mut rng = rng_from_seed(2);
        let ua = UniformAttachment::sample(50, 3, &mut rng).unwrap();
        let g = ua.digraph();
        // Vertex 2 can only reach 1 older vertex, vertex 3 two, then 3 each.
        assert_eq!(g.out_degree(NodeId::from_label(2)), 1);
        assert_eq!(g.out_degree(NodeId::from_label(3)), 2);
        for k in 4..=50 {
            assert_eq!(g.out_degree(NodeId::from_label(k)), 3);
        }
        assert!(is_connected(&ua.undirected()));
        assert_eq!(ua.undirected().parallel_edge_count(), 0);
    }

    #[test]
    fn fathers_are_roughly_uniform() {
        // For a random recursive tree the father of vertex n is uniform
        // on [1, n−1]; check the mean over many trials.
        let mut rng = rng_from_seed(3);
        let trials = 4000;
        let n = 20;
        let total: usize = (0..trials)
            .map(|_| {
                let ua = UniformAttachment::sample(n, 1, &mut rng).unwrap();
                ua.trace().father_of_label(n).unwrap().label()
            })
            .sum();
        let mean = total as f64 / trials as f64;
        let expect = (1 + (n - 1)) as f64 / 2.0; // uniform on 1..=19 → 10
        assert!((mean - expect).abs() < 0.5, "mean = {mean}");
    }

    #[test]
    fn validation() {
        let mut rng = rng_from_seed(4);
        assert!(UniformAttachment::sample(10, 0, &mut rng).is_err());
        assert!(UniformAttachment::sample(1, 1, &mut rng).is_err());
    }

    #[test]
    fn determinism_per_seed() {
        let a = UniformAttachment::sample(70, 2, &mut rng_from_seed(5)).unwrap();
        let b = UniformAttachment::sample(70, 2, &mut rng_from_seed(5)).unwrap();
        assert_eq!(a.digraph(), b.digraph());
    }
}
